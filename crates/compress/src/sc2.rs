//! SC2: statistical cache compression (Huffman over 32-bit words).
//!
//! Arelakis & Stenström, ISCA 2014. The SLC paper argues (Section II-A)
//! that SC2 "is similar to E2MC because both are based on Huffman
//! encoding ... Therefore, SC2 will suffer due to MAG". This
//! implementation — per-application value-frequency tables over 32-bit
//! words with an escape code — lets the claim be checked quantitatively
//! (see the extended Fig. 1 output).

use crate::bitstream::{BitReader, BitWriter};
use crate::e2mc::{CanonicalCode, MAX_CODE_LEN};
use crate::symbols::{block_to_words, words_to_block, WORDS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};
use std::collections::HashMap;

/// Number of most-frequent words granted Huffman codes.
pub const DEFAULT_TOP_K: usize = 1023;

/// The SC2 block compressor with a trained word-frequency table.
#[derive(Debug, Clone)]
pub struct Sc2 {
    /// Entry index -> word value.
    words: Vec<u32>,
    /// Word value -> entry index.
    lookup: HashMap<u32, u32>,
    code: CanonicalCode,
    escape_entry: usize,
}

impl Sc2 {
    /// Trains a table on sampled bytes (value-frequency profiling).
    pub fn train_on_bytes(bytes: &[u8], top_k: usize) -> Self {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for block in crate::symbols::blocks_of(bytes) {
            for w in block_to_words(&block) {
                *counts.entry(w).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut live: Vec<(u32, u64)> = counts.into_iter().collect();
        live.sort_by_key(|&(w, c)| (std::cmp::Reverse(c), w));
        live.truncate(top_k);
        let covered: u64 = live.iter().map(|&(_, c)| c).sum();
        let mut freqs: Vec<u64> = live.iter().map(|&(_, c)| c).collect();
        freqs.push((total - covered).max(1)); // escape
        let code = CanonicalCode::from_frequencies(&freqs, MAX_CODE_LEN);
        let words: Vec<u32> = live.iter().map(|&(w, _)| w).collect();
        let lookup = words.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect();
        Self { escape_entry: words.len(), words, lookup, code }
    }

    fn word_bits(&self, w: u32) -> u32 {
        match self.lookup.get(&w) {
            Some(&e) => self.code.length(e as usize),
            None => self.code.length(self.escape_entry) + 32,
        }
    }
}

impl BlockCompressor for Sc2 {
    fn name(&self) -> &'static str {
        "sc2"
    }

    fn compress(&self, block: &Block) -> Compressed {
        if self.size_bits(block) >= BLOCK_BITS {
            return Compressed::uncompressed(block);
        }
        let mut wtr = BitWriter::new();
        for w in block_to_words(block) {
            match self.lookup.get(&w) {
                Some(&e) => {
                    wtr.write(self.code.code(e as usize) as u64, self.code.length(e as usize));
                }
                None => {
                    let e = self.escape_entry;
                    wtr.write(self.code.code(e) as u64, self.code.length(e));
                    wtr.write(u64::from(w), 32);
                }
            }
        }
        let (payload, bits) = wtr.finish();
        Compressed::new(bits, payload)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let mut words = [0u32; WORDS_PER_BLOCK];
        for w in words.iter_mut() {
            let window = r.peek_padded(MAX_CODE_LEN) as u32;
            let (entry, len) = self.code.decode(window);
            r.skip(len);
            *w = if entry as usize == self.escape_entry {
                r.read(32) as u32
            } else {
                self.words[entry as usize]
            };
        }
        *out = words_to_block(&words);
    }

    fn size_bits(&self, block: &Block) -> u32 {
        let bits: u32 = block_to_words(block).iter().map(|&w| self.word_bits(w)).sum();
        bits.min(BLOCK_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn training() -> Vec<u8> {
        (0..1u32 << 14).flat_map(|i| ((i % 300) * 7).to_le_bytes()).collect()
    }

    fn block_from(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn in_distribution_words_compress() {
        let sc2 = Sc2::train_on_bytes(&training(), DEFAULT_TOP_K);
        let block = block_from(|i| (i as u32 % 300) * 7);
        let c = sc2.compress(&block);
        assert!(c.size_bits() < BLOCK_BITS / 2, "got {}", c.size_bits());
        assert_eq!(sc2.decompress(&c), block);
    }

    #[test]
    fn escapes_roundtrip() {
        let sc2 = Sc2::train_on_bytes(&training(), DEFAULT_TOP_K);
        let block = block_from(|i| if i % 2 == 0 { 7 } else { 0xdead_0000 + i as u32 });
        let c = sc2.compress(&block);
        assert_eq!(sc2.decompress(&c), block);
    }

    #[test]
    fn out_of_distribution_stays_verbatim() {
        let sc2 = Sc2::train_on_bytes(&training(), DEFAULT_TOP_K);
        let block = block_from(|i| 0x8000_0000 | (i as u32).wrapping_mul(2654435761));
        let c = sc2.compress(&block);
        assert_eq!(c.size_bits(), BLOCK_BITS);
        assert_eq!(sc2.decompress(&c), block);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_roundtrip(words in proptest::collection::vec(0u32..2100, WORDS_PER_BLOCK)) {
            let sc2 = Sc2::train_on_bytes(&training(), DEFAULT_TOP_K);
            let mut block = [0u8; BLOCK_BYTES];
            for (i, w) in words.iter().enumerate() {
                block[i*4..i*4+4].copy_from_slice(&w.to_le_bytes());
            }
            prop_assert_eq!(sc2.decompress(&sc2.compress(&block)), block);
            prop_assert!(sc2.size_bits(&block) <= BLOCK_BITS);
        }
    }
}

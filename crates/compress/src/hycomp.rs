//! HyComp and FP-H: data-type-aware hybrid compression.
//!
//! Arelakis, Dahlgren & Stenström, MICRO 2015. HyComp predicts a block's
//! data type and dispatches to a type-specific method; FP-H is its
//! floating-point path, which "divides a floating-point number into three
//! fields and then employs SC2" on each. The SLC paper argues (Section
//! II-A) that both inherit MAG sensitivity from their constituent
//! methods; these implementations make the claim measurable.

use crate::bdi::Bdi;
use crate::bitstream::{BitReader, BitWriter};
use crate::e2mc::{CanonicalCode, MAX_CODE_LEN};
use crate::sc2::Sc2;
use crate::symbols::{block_to_words, words_to_block, WORDS_PER_BLOCK};
use crate::{Block, BlockCompressor, Compressed, BLOCK_BITS, BLOCK_BYTES};

/// One Huffman-coded field of an `f32` word (FP-H splits words into
/// sign+exponent / mantissa-high / mantissa-low).
#[derive(Debug, Clone)]
struct FieldCode {
    code: CanonicalCode,
    bits: u32,
    shift: u32,
}

impl FieldCode {
    fn train(words: &[u32], bits: u32, shift: u32) -> Self {
        let mut freqs = vec![1u64; 1 << bits];
        for &w in words {
            freqs[((w >> shift) & ((1 << bits) - 1)) as usize] += 1;
        }
        Self { code: CanonicalCode::from_frequencies(&freqs, MAX_CODE_LEN), bits, shift }
    }

    fn field_of(&self, w: u32) -> u32 {
        (w >> self.shift) & ((1 << self.bits) - 1)
    }

    fn encode(&self, wtr: &mut BitWriter, w: u32) {
        let f = self.field_of(w) as usize;
        wtr.write(self.code.code(f) as u64, self.code.length(f));
    }

    fn decode(&self, r: &mut BitReader<'_>) -> u32 {
        let window = r.peek_padded(MAX_CODE_LEN) as u32;
        let (entry, len) = self.code.decode(window);
        r.skip(len);
        entry << self.shift
    }

    fn size(&self, w: u32) -> u32 {
        self.code.length(self.field_of(w) as usize)
    }
}

/// FP-H: per-field Huffman coding of `f32` words.
///
/// Fields: sign+exponent (9 bits), mantissa-high (12 bits), mantissa-low
/// (11 bits). Exponents cluster tightly in real data, mantissa-high less
/// so, mantissa-low barely — each field gets its own code.
#[derive(Debug, Clone)]
pub struct FpH {
    fields: [FieldCode; 3],
}

impl FpH {
    /// Trains the three field tables on sampled bytes.
    pub fn train_on_bytes(bytes: &[u8]) -> Self {
        let mut words = Vec::new();
        for block in crate::symbols::blocks_of(bytes) {
            words.extend(block_to_words(&block));
        }
        Self {
            fields: [
                FieldCode::train(&words, 9, 23),
                FieldCode::train(&words, 12, 11),
                FieldCode::train(&words, 11, 0),
            ],
        }
    }
}

impl BlockCompressor for FpH {
    fn name(&self) -> &'static str {
        "fp-h"
    }

    fn compress(&self, block: &Block) -> Compressed {
        if self.size_bits(block) >= BLOCK_BITS {
            return Compressed::uncompressed(block);
        }
        let mut wtr = BitWriter::new();
        for w in block_to_words(block) {
            for f in &self.fields {
                f.encode(&mut wtr, w);
            }
        }
        let (payload, bits) = wtr.finish();
        Compressed::new(bits, payload)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let mut words = [0u32; WORDS_PER_BLOCK];
        for w in words.iter_mut() {
            *w = self.fields.iter().map(|f| f.decode(&mut r)).fold(0, |a, b| a | b);
        }
        *out = words_to_block(&words);
    }

    fn size_bits(&self, block: &Block) -> u32 {
        let bits: u32 = block_to_words(block)
            .iter()
            .map(|&w| self.fields.iter().map(|f| f.size(w)).sum::<u32>())
            .sum();
        bits.min(BLOCK_BITS)
    }
}

/// Which method HyComp dispatched to (2-bit wire tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HyChoice {
    FpH,
    Bdi,
    Sc2,
}

impl HyChoice {
    fn tag(self) -> u64 {
        match self {
            HyChoice::FpH => 0,
            HyChoice::Bdi => 1,
            HyChoice::Sc2 => 2,
        }
    }
}

const TAG_BITS: u32 = 2;

/// HyComp: data-type prediction + method dispatch.
#[derive(Debug, Clone)]
pub struct HyComp {
    fph: FpH,
    sc2: Sc2,
    bdi: Bdi,
}

impl HyComp {
    /// Trains the statistical sub-methods on sampled bytes.
    pub fn train_on_bytes(bytes: &[u8]) -> Self {
        Self {
            fph: FpH::train_on_bytes(bytes),
            sc2: Sc2::train_on_bytes(bytes, crate::sc2::DEFAULT_TOP_K),
            bdi: Bdi::new(),
        }
    }

    /// The MICRO'15 idea in miniature: predict the block's data type from
    /// value shape, then pick that type's method; fall back to whichever
    /// of the trained methods is smallest when the prediction is weak.
    fn choose(&self, block: &Block) -> HyChoice {
        let words = block_to_words(block);
        let floats = words
            .iter()
            .filter(|&&w| {
                let exp = (w >> 23) & 0xff;
                (90..=160).contains(&exp) // |value| within ~1e-11..1e12
            })
            .count();
        if floats * 4 >= WORDS_PER_BLOCK * 3 {
            return HyChoice::FpH;
        }
        // Integers/pointers: BDI if it fires, else statistical.
        let bdi_bits = self.bdi.size_bits(block);
        let sc2_bits = self.sc2.size_bits(block);
        if bdi_bits < BLOCK_BITS && bdi_bits <= sc2_bits {
            HyChoice::Bdi
        } else {
            HyChoice::Sc2
        }
    }

    fn method(&self, c: HyChoice) -> &dyn BlockCompressor {
        match c {
            HyChoice::FpH => &self.fph,
            HyChoice::Bdi => &self.bdi,
            HyChoice::Sc2 => &self.sc2,
        }
    }
}

impl BlockCompressor for HyComp {
    fn name(&self) -> &'static str {
        "hycomp"
    }

    fn compress(&self, block: &Block) -> Compressed {
        let choice = self.choose(block);
        let inner = self.method(choice).compress(block);
        if !inner.is_compressed() || inner.size_bits() + TAG_BITS >= BLOCK_BITS {
            return Compressed::uncompressed(block);
        }
        let mut wtr = BitWriter::new();
        wtr.write(choice.tag(), TAG_BITS);
        wtr.append(inner.payload(), inner.size_bits());
        let (payload, bits) = wtr.finish();
        Compressed::new(bits, payload)
    }

    fn decompress_into(&self, size_bits: u32, compressed: bool, payload: &[u8], out: &mut Block) {
        if !compressed {
            out.copy_from_slice(&payload[..BLOCK_BYTES]);
            return;
        }
        let mut r = BitReader::new(payload, size_bits);
        let choice = match r.read(TAG_BITS) {
            0 => HyChoice::FpH,
            1 => HyChoice::Bdi,
            2 => HyChoice::Sc2,
            // slc-lint: allow(hot-path): corrupt-tag guard, contained by the engine's per-chunk catch_unwind
            t => panic!("corrupt HyComp stream: tag {t}"),
        };
        // Re-frame the remaining bits for the sub-decoder. The realigned
        // copy allocates, but through BitWriter's buffer, not the
        // banned-on-hot-paths calls — and only on the rare HyComp leg.
        let inner_bits = size_bits - TAG_BITS;
        let mut inner_w = BitWriter::new();
        let mut remaining = inner_bits;
        while remaining > 0 {
            let take = remaining.min(56);
            inner_w.write(r.read(take), take);
            remaining -= take;
        }
        let (bytes, bits) = inner_w.finish();
        self.method(choice).decompress_into(bits.max(1), true, &bytes, out);
    }

    fn size_bits(&self, block: &Block) -> u32 {
        let inner = self.method(self.choose(block)).size_bits(block);
        (inner + TAG_BITS).min(BLOCK_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn float_training() -> Vec<u8> {
        (0..1u32 << 14).flat_map(|i| (100.0f32 + (i % 1024) as f32 * 0.25).to_le_bytes()).collect()
    }

    fn float_block(offset: f32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            let v = 100.0f32 + offset + (i as f32) * 0.25;
            b[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        b
    }

    fn int_block(f: impl Fn(usize) -> u32) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        for i in 0..WORDS_PER_BLOCK {
            b[i * 4..i * 4 + 4].copy_from_slice(&f(i).to_le_bytes());
        }
        b
    }

    #[test]
    fn fph_compresses_float_blocks() {
        let fph = FpH::train_on_bytes(&float_training());
        let block = float_block(8.0);
        let c = fph.compress(&block);
        assert!(c.size_bits() < BLOCK_BITS, "floats should compress");
        assert_eq!(fph.decompress(&c), block);
    }

    #[test]
    fn fph_exponent_field_is_cheap() {
        // Exponents cluster: the sign+exponent field must cost far fewer
        // than its raw 9 bits.
        let fph = FpH::train_on_bytes(&float_training());
        let w = 100.5f32.to_bits();
        assert!(fph.fields[0].size(w) <= 3, "got {}", fph.fields[0].size(w));
    }

    #[test]
    fn hycomp_picks_fph_for_floats_and_bdi_for_ints() {
        let hy = HyComp::train_on_bytes(&float_training());
        assert_eq!(hy.choose(&float_block(4.0)), HyChoice::FpH);
        // 0x1000_0000-based values have exponent byte 0x20: pointer-like,
        // not float-like.
        let ints = int_block(|i| 0x1000_0000 + i as u32);
        assert_eq!(hy.choose(&ints), HyChoice::Bdi);
    }

    #[test]
    fn hycomp_roundtrips_all_paths() {
        let hy = HyComp::train_on_bytes(&float_training());
        for block in [
            float_block(2.0),
            int_block(|i| 0x1000_0000 + i as u32),
            int_block(|i| ((i as u32 % 1024) as f32 * 0.25 + 100.0).to_bits()),
            [0u8; BLOCK_BYTES],
        ] {
            let c = hy.compress(&block);
            assert_eq!(hy.decompress(&c), block);
            assert!(c.size_bits() <= BLOCK_BITS);
        }
    }

    #[test]
    fn hycomp_beats_single_methods_on_mixed_data() {
        // The MICRO'15 pitch: dispatching by type wins over any one method
        // across a mixed working set.
        let hy = HyComp::train_on_bytes(&float_training());
        let blocks = [float_block(1.0), int_block(|i| 0x1000_0000 + 3 * i as u32)];
        let hy_total: u32 = blocks.iter().map(|b| hy.size_bits(b)).sum();
        let bdi_total: u32 = blocks.iter().map(|b| hy.bdi.size_bits(b)).sum();
        let fph_total: u32 = blocks.iter().map(|b| hy.fph.size_bits(b)).sum();
        assert!(hy_total <= bdi_total.min(fph_total) + 2 * TAG_BITS);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_fph_roundtrip(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let fph = FpH::train_on_bytes(&float_training());
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(fph.decompress(&fph.compress(&block)), block);
        }

        #[test]
        fn prop_hycomp_roundtrip(data in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
            let hy = HyComp::train_on_bytes(&float_training());
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(&data);
            prop_assert_eq!(hy.decompress(&hy.compress(&block)), block);
        }
    }
}

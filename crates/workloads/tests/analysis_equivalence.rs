//! Pin of the shared-analysis pipeline: burst maps computed by sweeping a
//! per-snapshot [`SnapshotAnalysis`] are **bit-identical** to the direct
//! per-block [`Scheme::bursts_for_block`] path, across random memory
//! images, every MAG, a spread of thresholds and all TSLC variants.
//!
//! This is the equivalence contract the multi-layer refactor rests on:
//! one E2MC analysis pass per snapshot may serve every scheme, variant
//! and threshold only because each decision sweep reproduces the
//! re-encoding path exactly.

use proptest::prelude::*;
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_compress::{Block, Mag, BLOCK_BYTES};
use slc_core::slc::SlcVariant;
use slc_sim::mc::{BurstsMap, BurstsSource};
use slc_sim::GpuMemory;
use slc_workloads::analysis::SnapshotAnalysis;
use slc_workloads::scheme::{BurstsAccumulator, Scheme};
use std::sync::OnceLock;

/// One trained table for the whole test binary (training is expensive and
/// the contract is per-table anyway; `E2mc::clone` is an Arc bump).
fn trained() -> E2mc {
    static TABLE: OnceLock<E2mc> = OnceLock::new();
    TABLE
        .get_or_init(|| {
            let bytes: Vec<u8> = (0..1u32 << 15)
                .flat_map(|i| (250.0f32 + (i % 2048) as f32 * 0.5).to_le_bytes())
                .collect();
            E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
        })
        .clone()
}

/// Deterministic per-block PRNG (SplitMix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A block whose compressibility is steered by `kind`: in-distribution
/// floats (lossless/lossy candidates), slightly perturbed floats (the
/// just-above-a-MAG-multiple mass SLC targets) or raw noise (verbatim).
fn block_for(seed: u64, kind: u8) -> Block {
    let mut b = [0u8; BLOCK_BYTES];
    match kind % 3 {
        0 => {
            for (i, c) in b.chunks_exact_mut(4).enumerate() {
                let v = 250.0f32 + ((mix(seed) as u32 % 2048) as f32 + i as f32) * 0.5;
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        1 => {
            for (i, c) in b.chunks_exact_mut(4).enumerate() {
                let noise =
                    if i % 5 == 0 { (mix(seed ^ i as u64) & 0xff) as f32 * 1e-3 } else { 0.0 };
                let v = 250.0f32 + (i as f32) * 0.5 + noise;
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = (mix(seed.wrapping_mul(129) ^ i as u64) >> 33) as u8;
            }
        }
    }
    b
}

/// Builds a random memory image: interleaved approx/exact regions filled
/// with blocks of mixed compressibility.
fn build_memory(region_blocks: &[(bool, u8)], seed: u64) -> GpuMemory {
    let mut mem = GpuMemory::new();
    let mut fills = Vec::new();
    for (r, &(approx, blocks)) in region_blocks.iter().enumerate() {
        let blocks = usize::from(blocks.clamp(1, 4));
        let ptr =
            mem.malloc(if approx { "approx" } else { "exact" }, blocks * BLOCK_BYTES, approx, 16);
        fills.push((ptr, blocks, r as u64));
    }
    for (ptr, blocks, r) in fills {
        for i in 0..blocks {
            let s = mix(seed ^ (r << 32) ^ i as u64);
            let block = block_for(s, (s >> 17) as u8);
            let floats: Vec<f32> =
                block.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            mem.write_f32(slc_sim::DevicePtr(ptr.0 + (i * BLOCK_BYTES) as u64), &floats);
        }
    }
    mem
}

/// The reference path: per-block re-encoding via `bursts_for_block`.
fn direct_map(scheme: &Scheme, mem: &GpuMemory, mag: Mag) -> BurstsMap {
    let mut acc = BurstsAccumulator::new(mag);
    acc.snapshot(scheme, mem);
    acc.into_map()
}

/// The shared path: one analysis pass, one decision sweep.
fn analysis_map(scheme: &Scheme, snap: &SnapshotAnalysis, mag: Mag) -> BurstsMap {
    let mut acc = BurstsAccumulator::new(mag);
    acc.record(scheme, snap);
    acc.into_map()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_analysis_sweep_is_bit_identical_to_direct(
        seed in any::<u64>(),
        regions in proptest::collection::vec((any::<bool>(), 1u8..=4), 1..4),
        threshold_sel in 0usize..4,
    ) {
        let e2mc = trained();
        let mem = build_memory(&regions, seed);
        // One analysis pass per (table, snapshot) serves every scheme,
        // MAG and threshold below.
        let snap = SnapshotAnalysis::capture(&e2mc, &mem);
        for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
            let threshold = [0, 4, mag.bytes() / 2, mag.bytes()][threshold_sel];
            let mut schemes = vec![Scheme::E2mc(e2mc.clone())];
            for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
                schemes.push(Scheme::slc(e2mc.clone(), mag, threshold, variant));
            }
            for scheme in &schemes {
                let direct = direct_map(scheme, &mem, mag);
                let swept = analysis_map(scheme, &snap, mag);
                prop_assert_eq!(
                    &direct, &swept,
                    "mag {:?} threshold {} scheme {:?} diverged", mag, threshold, scheme.kind()
                );
                // And the public one-shot helper takes the same path.
                prop_assert_eq!(&scheme.bursts_map(&mem, mag), &direct);
            }
        }
    }

    #[test]
    fn prop_per_block_decision_sweep_matches_reencoding(
        seed in any::<u64>(),
        kind in any::<u8>(),
        approximable in any::<bool>(),
        threshold in 0u32..=32,
    ) {
        let e2mc = trained();
        let block = block_for(seed, kind);
        let analysis = e2mc.analyze(&block);
        for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
            for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
                let scheme = Scheme::slc(e2mc.clone(), mag, threshold, variant);
                prop_assert_eq!(
                    scheme.bursts_for_analysis(&analysis, mag, approximable),
                    scheme.bursts_for_block(&block, mag, approximable)
                );
            }
            let lossless = Scheme::E2mc(e2mc.clone());
            prop_assert_eq!(
                lossless.bursts_for_analysis(&analysis, mag, approximable),
                lossless.bursts_for_block(&block, mag, approximable)
            );
        }
    }
}

/// The retired `HashMap` accumulator, kept as the reference the dense
/// address-indexed path must reproduce bit-for-bit: per-block (sum,
/// folds) keyed by address, folded into rounded means over the **full**
/// recorded population, in ascending address order.
fn hashmap_reference(scheme: &Scheme, snapshots: &[SnapshotAnalysis], mag: Mag) -> Vec<(u64, u32)> {
    use std::collections::HashMap;
    let max = mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32);
    let mut sums: HashMap<u64, (u64, u32)> = HashMap::new();
    for snap in snapshots {
        for b in snap.entries() {
            let e = sums.entry(b.addr).or_insert((0, 0));
            e.0 += u64::from(scheme.bursts_for_analysis(&b.analysis, mag, b.approximable));
            e.1 += 1;
        }
    }
    let mut rows: Vec<(u64, u32)> = sums
        .into_iter()
        .map(|(addr, (sum, n))| (addr, ((sum as f64 / f64::from(n)).round() as u32).clamp(1, max)))
        .collect();
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dense accumulator/map must be bit-identical to the HashMap
    /// accumulation it replaced: same mapped addresses, same per-block
    /// means, same burst answers, same population mean — across random
    /// multi-snapshot folds, schemes, MAGs and thresholds.
    #[test]
    fn prop_dense_accumulator_matches_hashmap_reference(
        seed in any::<u64>(),
        regions in proptest::collection::vec((any::<bool>(), 1u8..=4), 1..4),
        snapshots in 1usize..=3,
        threshold_sel in 0usize..4,
    ) {
        let e2mc = trained();
        for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
            let threshold = [0, 4, mag.bytes() / 2, mag.bytes()][threshold_sel];
            let mut schemes = vec![Scheme::E2mc(e2mc.clone())];
            for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
                schemes.push(Scheme::slc(e2mc.clone(), mag, threshold, variant));
            }
            // Same region layout, different contents per snapshot: the
            // evolving-memory shape the harness folds across kernels.
            let snaps: Vec<SnapshotAnalysis> = (0..snapshots)
                .map(|s| {
                    let mem = build_memory(&regions, seed ^ ((s as u64) << 48));
                    SnapshotAnalysis::capture(&e2mc, &mem)
                })
                .collect();
            for scheme in &schemes {
                let mut acc = BurstsAccumulator::new(mag);
                for snap in &snaps {
                    acc.record(scheme, snap);
                }
                let map = acc.into_map();
                let reference = hashmap_reference(scheme, &snaps, mag);
                let dense: Vec<(u64, u32)> = map.iter().collect();
                prop_assert_eq!(&dense, &reference, "mapped content diverged");
                prop_assert_eq!(map.len(), reference.len(), "population diverged");
                let mean: f64 = reference.iter().map(|&(_, b)| f64::from(b)).sum::<f64>()
                    / reference.len() as f64;
                prop_assert!((map.mean_bursts() - mean).abs() < 1e-12);
                for &(addr, bursts) in &reference {
                    prop_assert_eq!(map.bursts(addr), bursts, "addr {}", addr);
                }
            }
        }
    }
}

#[test]
fn corpus_exercises_every_storage_mode() {
    // The equivalence proofs above are only meaningful if the generated
    // blocks actually spread across uncompressed, lossless *and* lossy
    // decisions; pin that the generator produces all three.
    use slc_core::slc::{SlcCompressor, SlcConfig, StoredKind};
    let e2mc = trained();
    let slc = SlcCompressor::new(e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
    let mut seen = [0usize; 3];
    for seed in 0..512u64 {
        let block = block_for(mix(seed), (mix(seed) >> 7) as u8);
        match slc.compress(&block).kind() {
            StoredKind::Uncompressed => seen[0] += 1,
            StoredKind::Lossless => seen[1] += 1,
            StoredKind::Lossy { .. } => seen[2] += 1,
        }
    }
    assert!(seen.iter().all(|&n| n > 10), "storage-mode mix too thin: {seen:?}");
}

#[test]
fn staged_snapshots_match_direct_accumulation_over_boundaries() {
    // Multi-snapshot folding (the harness' per-boundary mean) must agree
    // between the fused stage-and-analyse pass and stage + direct
    // re-encoding, including across evolving memory states.
    let e2mc = trained();
    for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
        let scheme = Scheme::slc(e2mc.clone(), Mag::GDDR5, 16, variant);
        let regions = [(true, 3u8), (false, 2u8), (true, 2u8)];
        let mut fused_mem = build_memory(&regions, 99);
        let mut legacy_mem = build_memory(&regions, 99);
        let mut fused = BurstsAccumulator::new(Mag::GDDR5);
        let mut legacy = BurstsAccumulator::new(Mag::GDDR5);
        for round in 0..3u64 {
            let snap = scheme.stage_analyzed(&mut fused_mem).expect("slc has a table");
            fused.record(&scheme, &snap);
            scheme.stage(&mut legacy_mem);
            legacy.snapshot(&scheme, &legacy_mem);
            // Perturb both memories identically between boundaries, as a
            // kernel would.
            for mem in [&mut fused_mem, &mut legacy_mem] {
                let vals: Vec<f32> =
                    (0..32).map(|i| 250.0 + (i as u64 + round) as f32 * 0.5).collect();
                mem.write_f32(slc_sim::DevicePtr(0), &vals);
            }
        }
        assert_eq!(fused.snapshots(), 3);
        assert_eq!(fused.into_map(), legacy.into_map(), "{variant:?}");
    }
}

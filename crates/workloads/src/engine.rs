//! Engine-backed snapshot containers: a whole [`GpuMemory`] image through
//! the `slc-engine` batch path, **reusing** cached analyses.
//!
//! # The sharing contract with [`SnapshotAnalysis`]
//!
//! A snapshot that has been analysed once (the shared pipeline of
//! [`crate::analysis`]) already knows every block's E2MC stored size.
//! The batch engine's [`Engine::compress_with_sizes`] consumes exactly
//! that: a truthful per-block size lets it skip the codec for every
//! incompressible block while producing output **byte-identical** to the
//! plain path. Three preconditions make the hand-off sound, and
//! [`compress_snapshot`] checks all of them:
//!
//! 1. **Same trained table.** Sizes are only meaningful against the
//!    table that produced them — verified via
//!    [`SnapshotAnalysis::matches`] (`Arc` identity, not value
//!    equality).
//! 2. **Same bytes, same order.** The engine's input stream must be the
//!    byte image whose blocks the snapshot analysed, in the snapshot's
//!    entry order. [`snapshot_bytes`] builds it by concatenating
//!    [`GpuMemory::region_bytes`] in region-table order — precisely the
//!    order [`GpuMemory::all_blocks`] (and therefore
//!    [`SnapshotAnalysis::capture`]) walks, and every region is a whole
//!    number of blocks because `malloc` pads to block multiples.
//! 3. **One size per block.** Checked by length: `entries × 128 B`
//!    must equal the byte image.
//!
//! Under that contract the engine performs zero re-analysis: the one
//! `analyze` pass per snapshot that the harness already paid is the only
//! one that ever runs, whether the snapshot feeds burst sweeps, ratio
//! studies or a framed container on disk.

use crate::analysis::SnapshotAnalysis;
use slc_compress::e2mc::E2mc;
use slc_compress::BLOCK_BYTES;
use slc_engine::{Engine, Threads};
use slc_sim::GpuMemory;
use std::sync::Arc;

/// The full byte image of `mem`'s regions, in region-table order — the
/// stream form of the snapshot that [`SnapshotAnalysis::capture`]
/// analyses block by block. Always a multiple of [`BLOCK_BYTES`]
/// (`malloc` pads every region to whole blocks).
pub fn snapshot_bytes(mem: &GpuMemory) -> Vec<u8> {
    let mut out = Vec::with_capacity(mem.len());
    for region in mem.regions() {
        out.extend_from_slice(mem.region_bytes(region));
    }
    debug_assert_eq!(out.len() % BLOCK_BYTES, 0, "regions are block-padded");
    out
}

/// Builds an E2MC batch engine sharing `e2mc`'s trained table (an `Arc`
/// refcount bump, the same clone-cost contract as `Scheme` building).
pub fn snapshot_engine(e2mc: &E2mc) -> Engine {
    Engine::new(Arc::new(e2mc.clone()))
}

/// Compresses a snapshot byte image into a framed container, feeding the
/// engine the snapshot's **cached** per-block sizes instead of letting it
/// re-analyse — see the module docs for the sharing contract. The
/// container is byte-identical to `engine.compress(bytes)`.
///
/// # Panics
///
/// Panics when any leg of the contract is violated: foreign trained
/// table, or a byte image whose block count disagrees with the
/// snapshot's entries.
pub fn compress_snapshot(
    engine: &Engine,
    e2mc: &E2mc,
    bytes: &[u8],
    snapshot: &SnapshotAnalysis,
    threads: Threads,
) -> Vec<u8> {
    assert!(
        snapshot.matches(e2mc),
        "snapshot analysed under a different trained table than the engine's codec"
    );
    assert_eq!(
        snapshot.entries().len() * BLOCK_BYTES,
        bytes.len(),
        "byte image and snapshot disagree on the block count"
    );
    let sizes: Vec<u32> = snapshot.entries().iter().map(|b| b.analysis.e2mc_size_bits()).collect();
    engine.compress_with_sizes(bytes, &sizes, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::e2mc::E2mcConfig;
    use slc_engine::frame_info;

    fn trained() -> E2mc {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 512) as f32).to_le_bytes()).collect();
        E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
    }

    fn memory() -> GpuMemory {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 2048, true, 16);
        let e = m.malloc("exact", 1024, false, 0);
        let vals: Vec<f32> = (0..512).map(|i| (i % 512) as f32).collect();
        m.write_f32(a, &vals);
        m.write_f32(e, &vals[..256]);
        m
    }

    #[test]
    fn snapshot_bytes_match_the_block_walk() {
        let mem = memory();
        let bytes = snapshot_bytes(&mem);
        assert_eq!(bytes.len(), mem.len());
        let walked: Vec<u8> =
            mem.blocks_with_addr().flat_map(|(_, _, block)| block.to_vec()).collect();
        assert_eq!(bytes, walked, "stream order must equal analysis entry order");
    }

    #[test]
    fn cached_sizes_reproduce_the_plain_container_exactly() {
        let e2mc = trained();
        let mem = memory();
        let snapshot = SnapshotAnalysis::capture(&e2mc, &mem);
        let engine = snapshot_engine(&e2mc);
        let bytes = snapshot_bytes(&mem);
        let plain = engine.compress(&bytes);
        let cached = compress_snapshot(&engine, &e2mc, &bytes, &snapshot, Threads::Serial);
        assert_eq!(plain, cached, "the no-re-analysis path must not change a single byte");
        assert_eq!(engine.decompress(&cached).unwrap(), bytes);
        let info = frame_info(&cached).unwrap();
        assert!(info.ratio() > 1.0, "in-distribution snapshot should compress");
    }

    #[test]
    #[should_panic(expected = "different trained table")]
    fn foreign_tables_are_rejected() {
        let e2mc = trained();
        let mem = memory();
        let snapshot = SnapshotAnalysis::capture(&trained(), &mem);
        let engine = snapshot_engine(&e2mc);
        let bytes = snapshot_bytes(&mem);
        let _ = compress_snapshot(&engine, &e2mc, &bytes, &snapshot, Threads::Serial);
    }

    #[test]
    #[should_panic(expected = "disagree on the block count")]
    fn truncated_images_are_rejected() {
        let e2mc = trained();
        let mem = memory();
        let snapshot = SnapshotAnalysis::capture(&e2mc, &mem);
        let engine = snapshot_engine(&e2mc);
        let bytes = snapshot_bytes(&mem);
        let _ = compress_snapshot(
            &engine,
            &e2mc,
            &bytes[..bytes.len() - BLOCK_BYTES],
            &snapshot,
            Threads::Serial,
        );
    }
}

//! Glue between benchmarks, compression schemes and the timing simulator.
//!
//! One benchmark evaluation follows the paper's methodology:
//!
//! 1. Build the inputs and run the kernels **exactly** — the reference
//!    output and the steady-state memory image.
//! 2. Train E2MC's symbol table on that memory image (the online
//!    sampling phase of §IV-A, which observes real traffic).
//! 3. For every scheme: re-run the kernels with the scheme's
//!    kernel-boundary staging (functional error), then derive the
//!    per-block burst map of the final memory image.
//! 4. Feed the benchmark's trace plus the burst map to the timing
//!    simulator with the scheme's codec latencies.

use crate::analysis::{SizeSnapshot, SnapshotAnalysis};
use crate::ladder::LadderState;
use crate::metrics;
use crate::scheme::{BurstsAccumulator, Scheme, SchemeKind};
use crate::suite::{Scale, Workload};
use slc_compress::e2mc::{E2mc, E2mcConfig};
use slc_sim::mc::BurstsMap;
use slc_sim::{Engine, FaultPlan, GpuConfig, GpuMemory, SimStats, Trace};
use std::sync::OnceLock;

/// Per-benchmark reusable artifacts (exact run, trained table, trace).
pub struct BenchmarkArtifacts {
    /// Benchmark name (Table III).
    pub name: String,
    /// Reference output of the exact run.
    pub exact_output: Vec<f32>,
    /// Memory image after the exact run (inputs + outputs).
    pub exact_memory: GpuMemory,
    /// E2MC trained on the benchmark's traffic. A shared handle: cloning
    /// it into a [`Scheme`] shares the frozen symbol table rather than
    /// copying it, so one `prepare` pass serves any number of schemes.
    pub e2mc: E2mc,
    /// The kernel pipeline's memory trace.
    pub trace: Trace,
    /// Seed the artifacts were prepared with (= the harness seed), so
    /// lazily derived runs replay the identical deterministic pipeline.
    pub seed: u64,
    /// Identity of the prepared workload instance: name plus the
    /// scale-dependent input description, so a same-named workload at a
    /// different scale can never consume (or populate) this cache.
    workload_fingerprint: String,
    /// Lazily captured per-kernel-boundary stored sizes of the exact
    /// (unstaged) run — see [`Self::exact_size_snapshots`].
    exact_size_snapshots: OnceLock<Vec<SizeSnapshot>>,
    /// Lazily captured analysis of [`Self::exact_memory`] — see
    /// [`Self::final_analysis`].
    final_analysis: OnceLock<SnapshotAnalysis>,
}

impl BenchmarkArtifacts {
    /// Stored sizes of the memory image at every kernel-boundary DRAM
    /// round-trip of the **exact** run, under the trained table.
    ///
    /// Computed once per artifacts (one deterministic replay of the
    /// kernel pipeline, sizing each boundary snapshot) and shared by
    /// every consumer thereafter: the E2MC-baseline functional pass of
    /// [`Harness::run_functional`] at *any* MAG or threshold reduces to a
    /// decision sweep over these sizes — the (schemes × thresholds)
    /// → 1 collapse of the shared pipeline. Kernels never see staged
    /// data in a lossless run, so these snapshots are bit-identical to
    /// what that run would observe.
    ///
    /// Every consumer of this cache — the baseline burst sweep here, the
    /// fault ladder's reconciliation tests — reads only each block's
    /// *stored size*, so the cache holds the slim [`SizeSnapshot`]
    /// representation (one `u32` per block) rather than full
    /// [`SnapshotAnalysis`] artifacts (196 B of code lengths per block,
    /// ~49× the footprint). Consumers that need the full analyses — SLC
    /// staging decisions, the Fig. 2 / §V-C studies — go through
    /// [`Scheme::stage_analyzed`] or [`Self::final_analysis`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `w` is not the workload instance these artifacts were
    /// prepared from — same benchmark *and* same scale-dependent input
    /// (replaying a different pipeline would cache, and then keep
    /// serving, the wrong snapshots).
    pub fn exact_size_snapshots(&self, w: &dyn Workload) -> &[SizeSnapshot] {
        assert_eq!(
            Self::fingerprint(w),
            self.workload_fingerprint,
            "artifacts were prepared from a different workload instance"
        );
        self.exact_size_snapshots.get_or_init(|| {
            let mut snapshots = Vec::new();
            let mut mem = w.build(self.seed);
            let mut capture =
                |m: &mut GpuMemory| snapshots.push(SizeSnapshot::capture(&self.e2mc, m));
            w.execute(&mut mem, &mut capture);
            snapshots
        })
    }

    /// Identity of one workload instance: Table III name + the
    /// scale-dependent input description (`name()` alone cannot tell two
    /// scales of the same benchmark apart).
    fn fingerprint(w: &dyn Workload) -> String {
        format!("{}/{}", w.name(), w.input_description())
    }

    /// Analysis of the final exact memory image (the state the Fig. 2
    /// heat map and the §V-C ratio studies bucket). Computed once; every
    /// MAG/threshold sweep reuses it.
    pub fn final_analysis(&self) -> &SnapshotAnalysis {
        self.final_analysis
            .get_or_init(|| SnapshotAnalysis::capture(&self.e2mc, &self.exact_memory))
    }
}

/// Result of one functional (data) pass under a scheme.
#[derive(Debug)]
pub struct FunctionalOutcome {
    /// Scheme identity.
    pub kind: SchemeKind,
    /// Application-specific error in percent (Fig. 7b / Fig. 9b).
    pub error_pct: f64,
    /// Uniform mean-relative-error in percent (the paper's cross-
    /// benchmark GM, §V-A).
    pub mre_pct: f64,
    /// Peak signal-to-noise ratio in dB against the exact output
    /// ([`metrics::psnr`]); infinite for exact reproductions. The
    /// fault-capacity curves plot this against fault density.
    pub psnr_db: f64,
    /// Largest absolute output deviation ([`metrics::max_abs_error`]).
    pub max_abs_err: f64,
    /// Burst count per block for the timing pass.
    pub bursts: BurstsMap,
    /// The fault ladder's verdict when the config injects faults
    /// ([`GpuConfig::fault`]): the remap table the timing pass replays
    /// plus the final counters. `None` on every fault-free path.
    pub fault: Option<FaultPlan>,
}

/// Result of one timing pass.
#[derive(Debug, Clone)]
pub struct TimingOutcome {
    /// Scheme identity.
    pub kind: SchemeKind,
    /// Raw counters.
    pub stats: SimStats,
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Input scale for all benchmarks.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Simulator configuration (defines MAG, SM count, latencies).
    pub config: GpuConfig,
}

impl Default for Harness {
    fn default() -> Self {
        Self { scale: Scale::Small, seed: 42, config: GpuConfig::default() }
    }
}

impl Harness {
    /// Creates a harness at `scale` with the Table II configuration.
    pub fn new(scale: Scale) -> Self {
        Self { scale, ..Self::default() }
    }

    /// Replaces the simulator configuration (e.g. a different MAG).
    pub fn with_config(mut self, config: GpuConfig) -> Self {
        self.config = config;
        self
    }

    /// Step 1 + 2: exact run and table training.
    ///
    /// The symbol table is trained on the initial *and* final memory
    /// images: the paper's online sampling observes the app's early
    /// traffic (input-dominated) and the steady state, and both matter —
    /// training on final state alone would crowd input symbols out of the
    /// table with transformed-output symbols the early traffic never
    /// carries.
    pub fn prepare(&self, w: &dyn Workload) -> BenchmarkArtifacts {
        let initial = w.build(self.seed);
        let mut mem = w.build(self.seed);
        let mut noop = |_: &mut GpuMemory| {};
        w.execute(&mut mem, &mut noop);
        let exact_output = w.output(&mem);
        let blocks: Vec<slc_compress::Block> =
            initial.all_blocks().map(|(_, b)| b).chain(mem.all_blocks().map(|(_, b)| b)).collect();
        let e2mc = E2mc::train_on_blocks(blocks.iter(), &E2mcConfig::default());
        let trace = w.trace(self.config.sms);
        BenchmarkArtifacts {
            name: w.name().to_owned(),
            exact_output,
            exact_memory: mem,
            e2mc,
            trace,
            seed: self.seed,
            workload_fingerprint: BenchmarkArtifacts::fingerprint(w),
            exact_size_snapshots: OnceLock::new(),
            final_analysis: OnceLock::new(),
        }
    }

    /// Step 3: one functional pass under `scheme`.
    ///
    /// The pass re-runs the kernels with the scheme's staging (lossy
    /// mutation for SLC, identity otherwise) and snapshots per-block
    /// burst counts at every kernel-boundary DRAM round-trip; the burst
    /// map is the per-block mean over snapshots (see
    /// [`crate::scheme::BurstsAccumulator`]).
    ///
    /// Each snapshot's blocks are analysed once and the analyses drive
    /// both the SLC staging decision and the burst accounting (the fused
    /// [`Scheme::stage_analyzed`] pass). Non-mutating schemes sharing the
    /// artifacts' trained table skip the kernel replay entirely: their
    /// run observes exactly the exact run's memory trajectory, so they
    /// sweep the cached [`BenchmarkArtifacts::exact_size_snapshots`] —
    /// byte-identical output, one sizing pass amortised over every
    /// scheme, MAG and threshold.
    pub fn run_functional(
        &self,
        w: &dyn Workload,
        artifacts: &BenchmarkArtifacts,
        scheme: &Scheme,
    ) -> FunctionalOutcome {
        if self.config.fault.is_some() {
            // Faulty DRAM invalidates every cached shortcut below: the
            // ladder must walk each snapshot to count escalations and
            // assign spare slots, whatever the scheme.
            return self.run_functional_faulty(w, artifacts, scheme);
        }
        let mag = self.config.mag();
        if matches!(scheme, Scheme::Uncompressed) {
            return FunctionalOutcome {
                kind: scheme.kind(),
                error_pct: 0.0,
                mre_pct: 0.0,
                psnr_db: f64::INFINITY,
                max_abs_err: 0.0,
                bursts: BurstsAccumulator::new(mag).into_map(),
                fault: None,
            };
        }
        let shares_artifact_table = scheme.e2mc().is_some_and(|e| {
            std::sync::Arc::ptr_eq(e.shared_table(), artifacts.e2mc.shared_table())
        });
        if matches!(scheme, Scheme::E2mc(_))
            && shares_artifact_table
            && self.seed == artifacts.seed
            && BenchmarkArtifacts::fingerprint(w) == artifacts.workload_fingerprint
        {
            // Lossless staging is the identity, so a fresh run would
            // deterministically retrace the exact run; sweep its cached
            // per-boundary stored sizes instead of re-executing the
            // kernels (the E2MC burst decision needs nothing else).
            let mut accumulator = BurstsAccumulator::new(mag);
            for snapshot in artifacts.exact_size_snapshots(w) {
                accumulator.record_sizes(scheme, snapshot);
            }
            return FunctionalOutcome {
                kind: scheme.kind(),
                error_pct: w.error(&artifacts.exact_output, &artifacts.exact_output),
                mre_pct: metrics::mre(&artifacts.exact_output, &artifacts.exact_output) * 100.0,
                psnr_db: f64::INFINITY,
                max_abs_err: 0.0,
                bursts: accumulator.into_map(),
                fault: None,
            };
        }
        self.run_functional_direct(w, artifacts, scheme)
    }

    /// The uncached functional pass: replays the kernels under the
    /// scheme's staging, analysing each boundary snapshot once.
    fn run_functional_direct(
        &self,
        w: &dyn Workload,
        artifacts: &BenchmarkArtifacts,
        scheme: &Scheme,
    ) -> FunctionalOutcome {
        let mut accumulator = BurstsAccumulator::new(self.config.mag());
        let output = {
            let mut mem = w.build(self.seed);
            let mut stage = |m: &mut GpuMemory| {
                let snapshot =
                    scheme.stage_analyzed(m).expect("Uncompressed is handled by the caller");
                accumulator.record(scheme, &snapshot);
            };
            w.execute(&mut mem, &mut stage);
            w.output(&mem)
        };
        let error_pct = w.error(&artifacts.exact_output, &output);
        let mre_pct = metrics::mre(&artifacts.exact_output, &output) * 100.0;
        FunctionalOutcome {
            kind: scheme.kind(),
            error_pct,
            mre_pct,
            psnr_db: metrics::psnr(&artifacts.exact_output, &output),
            max_abs_err: metrics::max_abs_error(&artifacts.exact_output, &output),
            bursts: accumulator.into_map(),
            fault: None,
        }
    }

    /// The fault-aware functional pass: replays the kernels with the
    /// graceful-degradation ladder ([`crate::ladder`]) resolving every
    /// block at every kernel-boundary staging point, and packages the
    /// resulting [`FaultPlan`] for the timing side.
    ///
    /// Runs for *every* scheme when [`GpuConfig::fault`] is set — the
    /// cached lossless shortcut of [`run_functional`](Self::run_functional)
    /// cannot count ladder decisions, and even the uncompressed scheme
    /// must walk the snapshots to tally uncorrectable blocks.
    fn run_functional_faulty(
        &self,
        w: &dyn Workload,
        artifacts: &BenchmarkArtifacts,
        scheme: &Scheme,
    ) -> FunctionalOutcome {
        let mut ladder =
            LadderState::new(&self.config).expect("caller checked that config.fault is set");
        let mut accumulator = BurstsAccumulator::new(self.config.mag());
        let output = {
            let mut mem = w.build(self.seed);
            let mut stage =
                |m: &mut GpuMemory| ladder.stage_and_record(scheme, m, &mut accumulator);
            w.execute(&mut mem, &mut stage);
            w.output(&mem)
        };
        let error_pct = w.error(&artifacts.exact_output, &output);
        let mre_pct = metrics::mre(&artifacts.exact_output, &output) * 100.0;
        FunctionalOutcome {
            kind: scheme.kind(),
            error_pct,
            mre_pct,
            psnr_db: metrics::psnr(&artifacts.exact_output, &output),
            max_abs_err: metrics::max_abs_error(&artifacts.exact_output, &output),
            bursts: accumulator.into_map(),
            fault: Some(ladder.into_plan()),
        }
    }

    /// Step 4: the timing pass.
    ///
    /// The NOCOMP baseline runs with the MDC removed
    /// ([`GpuConfig::without_mdc`]): a GPU without compression hardware
    /// has no metadata cache, so the baseline must pay neither MDC
    /// lookups nor metadata DRAM traffic — every block simply moves at
    /// the MAG's maximum burst count.
    pub fn run_timing(
        &self,
        artifacts: &BenchmarkArtifacts,
        functional: &FunctionalOutcome,
        scheme: &Scheme,
    ) -> TimingOutcome {
        let (compress, decompress) = scheme.codec_latency();
        let mut cfg = self.config.clone().with_codec_latency(compress, decompress);
        if matches!(scheme, Scheme::Uncompressed) {
            cfg = cfg.without_mdc();
        }
        let mut engine = Engine::new(cfg);
        if let Some(plan) = &functional.fault {
            engine = engine.with_fault_plan(plan.clone());
        }
        let stats = engine.run(&artifacts.trace, &functional.bursts);
        TimingOutcome { kind: scheme.kind(), stats }
    }

    /// Convenience: functional + timing in one call.
    pub fn evaluate(
        &self,
        w: &dyn Workload,
        artifacts: &BenchmarkArtifacts,
        scheme: &Scheme,
    ) -> (FunctionalOutcome, TimingOutcome) {
        let f = self.run_functional(w, artifacts, scheme);
        let t = self.run_timing(artifacts, &f, scheme);
        (f, t)
    }
}

/// Speedup of `candidate` over `baseline` (cycles ratio, >1 = faster).
pub fn speedup(baseline: &SimStats, candidate: &SimStats) -> f64 {
    baseline.cycles as f64 / candidate.cycles.max(1) as f64
}

/// Normalised DRAM traffic of `candidate` vs `baseline` (<1 = less).
pub fn normalized_bandwidth(baseline: &SimStats, candidate: &SimStats) -> f64 {
    candidate.total_bursts() as f64 / baseline.total_bursts().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::nn::Nn;
    use slc_core::slc::SlcVariant;

    fn harness() -> Harness {
        Harness::new(Scale::Tiny)
    }

    #[test]
    fn exact_functional_pass_has_zero_error() {
        let h = harness();
        let nn = Nn::new(Scale::Tiny);
        let artifacts = h.prepare(&nn);
        let scheme = Scheme::E2mc(artifacts.e2mc.clone());
        let f = h.run_functional(&nn, &artifacts, &scheme);
        assert_eq!(f.error_pct, 0.0);
        assert_eq!(f.mre_pct, 0.0);
        assert!(!f.bursts.is_empty(), "trained E2MC should compress NN traffic");
    }

    #[test]
    fn cached_baseline_pass_equals_direct_replay() {
        // The E2MC baseline sweeps the artifacts' cached exact-run
        // analyses instead of re-executing the kernels; the outcome must
        // be indistinguishable from the uncached replay.
        let h = harness();
        let nn = Nn::new(Scale::Tiny);
        let artifacts = h.prepare(&nn);
        let scheme = Scheme::E2mc(artifacts.e2mc.clone());
        let cached = h.run_functional(&nn, &artifacts, &scheme);
        let direct = h.run_functional_direct(&nn, &artifacts, &scheme);
        assert_eq!(cached.error_pct, direct.error_pct);
        assert_eq!(cached.mre_pct, direct.mre_pct);
        assert_eq!(cached.bursts, direct.bursts);
        // A scheme trained elsewhere must not consume the cache (and the
        // harness falls back to the replay without panicking).
        let foreign = Scheme::E2mc(E2mc::train_on_bytes(
            &(0..4096u32).flat_map(|i| (i % 7).to_le_bytes()).collect::<Vec<u8>>(),
            &E2mcConfig::default(),
        ));
        let f = h.run_functional(&nn, &artifacts, &foreign);
        assert_eq!(f.error_pct, 0.0);
    }

    #[test]
    #[should_panic(expected = "different workload instance")]
    fn exact_snapshots_reject_a_different_scale_instance() {
        // Same benchmark name, different scale: the cache must refuse it
        // (name alone cannot tell the two input pipelines apart).
        let h = harness();
        let artifacts = h.prepare(&Nn::new(Scale::Tiny));
        let _ = artifacts.exact_size_snapshots(&Nn::new(Scale::Small));
    }

    #[test]
    fn slc_introduces_small_error_and_saves_bursts() {
        let h = harness();
        let nn = Nn::new(Scale::Tiny);
        let artifacts = h.prepare(&nn);
        let lossless = Scheme::E2mc(artifacts.e2mc.clone());
        let lossy = Scheme::slc(artifacts.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
        let f_lossless = h.run_functional(&nn, &artifacts, &lossless);
        let f_lossy = h.run_functional(&nn, &artifacts, &lossy);
        assert!(f_lossy.mre_pct >= 0.0);
        // Both maps record the full block population of the same memory
        // trajectory, so the means average the same block set and the
        // comparison is apples to apples (and strict: the lossy mode
        // must actually save bursts somewhere on NN).
        assert_eq!(
            f_lossy.bursts.len(),
            f_lossless.bursts.len(),
            "burst maps must cover the identical block population"
        );
        assert!(
            f_lossy.bursts.mean_bursts() < f_lossless.bursts.mean_bursts(),
            "SLC must cut traffic: {} vs {}",
            f_lossy.bursts.mean_bursts(),
            f_lossless.bursts.mean_bursts()
        );
    }

    #[test]
    fn nocomp_baseline_pays_no_metadata() {
        // A GPU without compression has no MDC: the NOCOMP timing run
        // must record zero MDC activity and zero metadata traffic, while
        // a compressed scheme on the same trace pays real metadata
        // fetches *and* write-backs (its stores update burst counts).
        let h = harness();
        let nn = Nn::new(Scale::Tiny);
        let artifacts = h.prepare(&nn);
        let (_, t) = h.evaluate(&nn, &artifacts, &Scheme::Uncompressed);
        assert_eq!(t.stats.mdc_hits + t.stats.mdc_misses, 0, "NOCOMP has no MDC");
        assert_eq!(t.stats.metadata_bursts, 0);
        assert_eq!(t.stats.metadata_writeback_bursts, 0);
        let lossless = Scheme::E2mc(artifacts.e2mc.clone());
        let (_, tc) = h.evaluate(&nn, &artifacts, &lossless);
        assert!(tc.stats.mdc_hits + tc.stats.mdc_misses > 0);
        assert!(tc.stats.metadata_bursts > 0);
        assert!(
            tc.stats.metadata_writeback_bursts > 0,
            "write-heavy run must store updated metadata lines"
        );
    }

    #[test]
    fn timing_ranks_schemes_sanely() {
        let h = harness();
        let nn = Nn::new(Scale::Tiny);
        let artifacts = h.prepare(&nn);
        let none = Scheme::Uncompressed;
        let lossless = Scheme::E2mc(artifacts.e2mc.clone());
        let (f0, t0) = h.evaluate(&nn, &artifacts, &none);
        let (f1, t1) = h.evaluate(&nn, &artifacts, &lossless);
        assert_eq!(f0.error_pct, 0.0);
        assert_eq!(f1.error_pct, 0.0);
        assert!(
            t1.stats.total_bursts() < t0.stats.total_bursts(),
            "compression must cut bursts: {} vs {}",
            t1.stats.total_bursts(),
            t0.stats.total_bursts()
        );
        assert!(speedup(&t0.stats, &t1.stats) > 1.0, "E2MC should beat no compression on NN");
    }

    #[test]
    fn speedup_and_bandwidth_helpers() {
        let mut a = SimStats::new();
        a.cycles = 200;
        a.read_bursts = 100;
        let mut b = SimStats::new();
        b.cycles = 100;
        b.read_bursts = 50;
        assert!((speedup(&a, &b) - 2.0).abs() < 1e-12);
        assert!((normalized_bandwidth(&a, &b) - 0.5).abs() < 1e-12);
    }
}

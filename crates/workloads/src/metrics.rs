//! Application-specific error metrics (paper Section IV-B).
//!
//! "We use mean relative error (MRE) for applications which produce
//! numeric outputs and Normalized Root Mean Square Error (NRMSE) which
//! process images or belong to a signal processing domain. JM ... we use
//! miss rate to report the fraction of incorrect decisions."

/// Which metric a benchmark reports (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorMetric {
    /// Mean relative error over numeric outputs.
    Mre,
    /// Normalised root-mean-square error (signal processing).
    Nrmse,
    /// NRMSE over pixel data, reported as "image diff" in the paper.
    ImageDiff,
    /// Fraction of boolean decisions that flipped.
    MissRate,
}

impl ErrorMetric {
    /// Table III's label for the metric.
    pub fn label(self) -> &'static str {
        match self {
            ErrorMetric::Mre => "MRE",
            ErrorMetric::Nrmse => "NRMSE",
            ErrorMetric::ImageDiff => "Image diff.",
            ErrorMetric::MissRate => "Miss rate",
        }
    }

    /// Computes the metric between `approx` and `exact` outputs, as a
    /// percentage in `[0, 100]`-ish range (may exceed 100 for wild MRE).
    ///
    /// # Panics
    ///
    /// Panics when lengths differ or the outputs are empty.
    pub fn compute(self, exact: &[f32], approx: &[f32]) -> f64 {
        match self {
            ErrorMetric::Mre => mre(exact, approx) * 100.0,
            ErrorMetric::Nrmse | ErrorMetric::ImageDiff => nrmse(exact, approx) * 100.0,
            ErrorMetric::MissRate => miss_rate(exact, approx) * 100.0,
        }
    }
}

fn check(exact: &[f32], approx: &[f32]) {
    assert_eq!(exact.len(), approx.len(), "output length mismatch");
    assert!(!exact.is_empty(), "empty outputs");
}

/// Mean relative error: `mean(|a - e| / max(|e|, eps))`.
///
/// The epsilon guards against division blow-up on near-zero exact values,
/// the standard practice in the approximate-computing literature.
pub fn mre(exact: &[f32], approx: &[f32]) -> f64 {
    check(exact, approx);
    let eps = 1e-6_f64;
    let sum: f64 = exact
        .iter()
        .zip(approx)
        .map(|(&e, &a)| {
            if !a.is_finite() {
                // Approximation produced NaN/Inf (e.g. a zero-filled
                // divisor): count as a fully wrong output.
                return 1.0;
            }
            let e = f64::from(e);
            let a = f64::from(a);
            ((a - e).abs() / e.abs().max(eps)).min(1.0)
        })
        .sum();
    sum / exact.len() as f64
}

/// NRMSE: `rms(a - e) / (max(e) - min(e))`; 0 when the output is constant
/// and exactly reproduced, 1-scale otherwise.
pub fn nrmse(exact: &[f32], approx: &[f32]) -> f64 {
    check(exact, approx);
    let n = exact.len() as f64;
    let min = exact.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = exact.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let range = (f64::from(max) - f64::from(min)).max(0.0);
    let mse: f64 = exact
        .iter()
        .zip(approx)
        .map(|(&e, &a)| {
            let d = if a.is_finite() {
                f64::from(a) - f64::from(e)
            } else {
                // NaN/Inf outputs count as a full-range miss.
                range.max(1.0)
            };
            d * d
        })
        .sum::<f64>()
        / n;
    if range <= 0.0 {
        return if mse == 0.0 { 0.0 } else { 1.0 };
    }
    mse.sqrt() / range
}

/// Peak signal-to-noise ratio in dB, with the exact output's value
/// range as the peak (the convention the fault-capacity curves report).
/// [`f64::INFINITY`] when the outputs are identical; non-finite
/// approximations count as a full-range miss, as in [`nrmse`].
pub fn psnr(exact: &[f32], approx: &[f32]) -> f64 {
    check(exact, approx);
    let n = exact.len() as f64;
    let min = exact.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = exact.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let range = (f64::from(max) - f64::from(min)).max(0.0);
    // A constant exact output has no range; fall back to unit peak so a
    // miss still registers as finite (and identity as infinite).
    let peak = if range > 0.0 { range } else { 1.0 };
    let mse: f64 = exact
        .iter()
        .zip(approx)
        .map(|(&e, &a)| {
            let d = if a.is_finite() { f64::from(a) - f64::from(e) } else { peak };
            d * d
        })
        .sum::<f64>()
        / n;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (peak * peak / mse).log10()
}

/// Largest absolute output deviation; [`f64::INFINITY`] when the
/// approximation produced NaN/Inf.
pub fn max_abs_error(exact: &[f32], approx: &[f32]) -> f64 {
    check(exact, approx);
    exact
        .iter()
        .zip(approx)
        .map(
            |(&e, &a)| {
                if a.is_finite() {
                    (f64::from(a) - f64::from(e)).abs()
                } else {
                    f64::INFINITY
                }
            },
        )
        .fold(0.0, f64::max)
}

/// Fraction of decisions that differ; outputs are booleans stored as
/// 0.0 / 1.0 floats.
pub fn miss_rate(exact: &[f32], approx: &[f32]) -> f64 {
    check(exact, approx);
    let misses = exact.iter().zip(approx).filter(|(&e, &a)| (e > 0.5) != (a > 0.5)).count();
    misses as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_zero_error() {
        let v = vec![1.0f32, -2.0, 3.5, 100.0];
        assert_eq!(mre(&v, &v), 0.0);
        assert_eq!(nrmse(&v, &v), 0.0);
        assert_eq!(miss_rate(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn mre_is_relative() {
        let exact = vec![100.0f32, 200.0];
        let approx = vec![101.0f32, 202.0];
        assert!((mre(&exact, &approx) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn mre_caps_blowups_at_one() {
        let exact = vec![1e-9f32];
        let approx = vec![1.0f32];
        assert!(mre(&exact, &approx) <= 1.0);
    }

    #[test]
    fn nrmse_normalises_by_range() {
        let exact = vec![0.0f32, 10.0];
        let approx = vec![1.0f32, 10.0];
        // rms = sqrt(1/2), range = 10.
        assert!((nrmse(&exact, &approx) - (0.5f64).sqrt() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn nrmse_constant_output() {
        let exact = vec![5.0f32; 4];
        assert_eq!(nrmse(&exact, &exact), 0.0);
        assert_eq!(nrmse(&exact, &[5.0, 5.0, 5.0, 6.0]), 1.0);
    }

    #[test]
    fn psnr_is_infinite_on_identity_and_drops_with_noise() {
        let exact: Vec<f32> = (0..64).map(|i| i as f32).collect();
        assert_eq!(psnr(&exact, &exact), f64::INFINITY);
        let small: Vec<f32> = exact.iter().map(|v| v + 0.1).collect();
        let big: Vec<f32> = exact.iter().map(|v| v + 1.0).collect();
        assert!(psnr(&exact, &small) > psnr(&exact, &big));
        // Uniform +1 error: mse = 1, peak = range = 63.
        assert!((psnr(&exact, &big) - 10.0 * (63.0f64 * 63.0).log10()).abs() < 1e-9);
        assert!(psnr(&exact, &[vec![f32::NAN], exact[1..].to_vec()].concat()).is_finite());
    }

    #[test]
    fn max_abs_error_tracks_the_worst_output() {
        assert_eq!(max_abs_error(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_abs_error(&[1.0], &[f32::NAN]).is_infinite());
    }

    #[test]
    fn miss_rate_counts_flips() {
        let exact = vec![1.0f32, 0.0, 1.0, 0.0];
        let approx = vec![1.0f32, 1.0, 0.0, 0.0];
        assert!((miss_rate(&exact, &approx) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metric_compute_is_percent() {
        let exact = vec![1.0f32, 1.0];
        let approx = vec![1.01f32, 1.01];
        let pct = ErrorMetric::Mre.compute(&exact, &approx);
        assert!((pct - 1.0).abs() < 0.01, "got {pct}");
    }

    #[test]
    fn labels_match_table_iii() {
        assert_eq!(ErrorMetric::Mre.label(), "MRE");
        assert_eq!(ErrorMetric::MissRate.label(), "Miss rate");
        assert_eq!(ErrorMetric::ImageDiff.label(), "Image diff.");
        assert_eq!(ErrorMetric::Nrmse.label(), "NRMSE");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mre(&[1.0], &[1.0, 2.0]);
    }
}

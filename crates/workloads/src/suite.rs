//! The workload abstraction and the benchmark registry (Table III).

use crate::metrics::ErrorMetric;
use slc_sim::{GpuMemory, Trace};

/// Input scaling relative to the paper's inputs.
///
/// The paper runs 4 M options / 1024² images / 8–20 M elements on
/// gpgpu-sim; this reproduction defaults to 4–16× smaller inputs so the
/// full figure suite runs in minutes (DESIGN.md §7). `Full` matches the
/// paper sizes where feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Fast inputs for unit/integration tests.
    Tiny,
    /// Default experiment inputs (4–16× below the paper).
    #[default]
    Small,
    /// Paper-sized inputs.
    Full,
}

impl Scale {
    /// Reads `SLC_SCALE` (`tiny` / `small` / `full`) with `Small` default.
    pub fn from_env() -> Self {
        match std::env::var("SLC_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// A scale-dependent pick: `tiny` / `small` / `full`.
    pub fn pick(self, tiny: usize, small: usize, full: usize) -> usize {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// One benchmark of Table III.
///
/// A workload owns its sizes (fixed at construction from a [`Scale`]) and
/// provides the functional pipeline, the memory trace, and the error
/// metric. All methods are deterministic in the seed.
pub trait Workload: Send + Sync {
    /// Table III short name ("JM", "BS", ...).
    fn name(&self) -> &'static str;

    /// Table III description.
    fn description(&self) -> &'static str;

    /// Table III error metric.
    fn metric(&self) -> ErrorMetric;

    /// Table III's #AR: how many regions the annotation marks safe.
    fn approx_regions(&self) -> usize;

    /// Table III input description (at the current scale).
    fn input_description(&self) -> String;

    /// Allocates and fills device memory (the extended-`cudaMalloc`
    /// annotations live here).
    fn build(&self, seed: u64) -> GpuMemory;

    /// Runs the kernel pipeline. `stage` is the kernel-boundary DRAM
    /// round-trip: implementations must call it after uploading inputs and
    /// between dependent kernels, mirroring where data crosses DRAM.
    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory));

    /// Extracts the output the error metric is computed over.
    fn output(&self, mem: &GpuMemory) -> Vec<f32>;

    /// The memory trace of the kernel pipeline for `sms` SMs (access
    /// pattern is data-independent for all Table III benchmarks).
    fn trace(&self, sms: usize) -> Trace;

    /// Error between an approximated output and the exact output,
    /// in percent.
    fn error(&self, exact: &[f32], approx: &[f32]) -> f64 {
        self.metric().compute(exact, approx)
    }
}

/// All nine benchmarks at `scale`, in the paper's figure order.
pub fn all_workloads(scale: Scale) -> Vec<Box<dyn Workload>> {
    use crate::benchmarks::*;
    vec![
        Box::new(jm::Jm::new(scale)),
        Box::new(bs::Bs::new(scale)),
        Box::new(dct::Dct::new(scale)),
        Box::new(fwt::Fwt::new(scale)),
        Box::new(tp::Tp::new(scale)),
        Box::new(bp::Bp::new(scale)),
        Box::new(nn::Nn::new(scale)),
        Box::new(srad::Srad::v1(scale)),
        Box::new(srad::Srad::v2(scale)),
    ]
}

/// Looks up one benchmark by its Table III name (case-insensitive).
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    all_workloads(scale).into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nine_benchmarks_in_paper_order() {
        let names: Vec<&str> = all_workloads(Scale::Tiny).iter().map(|w| w.name()).collect();
        assert_eq!(names, ["JM", "BS", "DCT", "FWT", "TP", "BP", "NN", "SRAD1", "SRAD2"]);
    }

    #[test]
    fn approx_region_counts_match_table_iii() {
        let expected = [6, 4, 2, 2, 2, 6, 2, 8, 6];
        for (w, &ar) in all_workloads(Scale::Tiny).iter().zip(&expected) {
            assert_eq!(w.approx_regions(), ar, "{}", w.name());
            // The built memory must agree with the declared count.
            let mem = w.build(1);
            assert_eq!(mem.approx_regions(), ar, "{} built memory", w.name());
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(workload_by_name("srad1", Scale::Tiny).is_some());
        assert!(workload_by_name("BS", Scale::Tiny).is_some());
        assert!(workload_by_name("nope", Scale::Tiny).is_none());
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn builds_are_deterministic() {
        for w in all_workloads(Scale::Tiny) {
            let a = w.build(42);
            let b = w.build(42);
            assert_eq!(a.regions().len(), b.regions().len());
            let pa = w.output(&a);
            let pb = w.output(&b);
            assert_eq!(pa, pb, "{} build not deterministic", w.name());
        }
    }
}

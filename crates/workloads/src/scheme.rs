//! Compression schemes as the memory system applies them.
//!
//! Lossless compression (E2MC here) applies to *all* DRAM traffic; the
//! lossy SLC mode additionally applies to blocks inside
//! safe-to-approximate regions. A [`Scheme`] bundles the functional
//! staging pass (what data looks like after a DRAM round-trip), the burst
//! accounting for the timing simulator, and the codec latencies of
//! Section IV-A.

use crate::analysis::{AnalyzedBlock, SizeSnapshot, SnapshotAnalysis};
use slc_compress::e2mc::{BlockAnalysis, E2mc};
use slc_compress::{Block, Mag, BLOCK_BYTES};
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc_sim::dense::DenseAddrMap;
use slc_sim::mc::BurstsMap;
use slc_sim::{BlockAddr, GpuMemory};

/// Identifies a scheme in figures and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No compression: every block moves at full burst count.
    Uncompressed,
    /// Lossless E2MC (the paper's baseline).
    E2mc,
    /// One of the TSLC variants.
    Slc(SlcVariant),
}

impl SchemeKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Uncompressed => "NOCOMP",
            SchemeKind::E2mc => "E2MC",
            SchemeKind::Slc(v) => v.label(),
        }
    }
}

/// A runnable compression scheme.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// No compression.
    Uncompressed,
    /// Lossless E2MC on all traffic.
    E2mc(E2mc),
    /// E2MC on all traffic; SLC lossy mode on safe-to-approximate regions.
    Slc(SlcCompressor),
}

impl Scheme {
    /// Builds the SLC scheme from a trained baseline.
    ///
    /// `e2mc` is a shared handle to the frozen symbol table (cloning one
    /// is an `Arc` refcount bump), so callers build as many schemes per
    /// trained model as they like — one per TSLC variant, per threshold,
    /// per thread — without ever copying the trained tables.
    pub fn slc(e2mc: E2mc, mag: Mag, threshold_bytes: u32, variant: SlcVariant) -> Self {
        Scheme::Slc(SlcCompressor::new(e2mc, SlcConfig::new(mag, threshold_bytes, variant)))
    }

    /// The scheme's identity.
    pub fn kind(&self) -> SchemeKind {
        match self {
            Scheme::Uncompressed => SchemeKind::Uncompressed,
            Scheme::E2mc(_) => SchemeKind::E2mc,
            Scheme::Slc(s) => SchemeKind::Slc(s.config().variant()),
        }
    }

    /// (compress, decompress) latency in SM cycles (paper §IV-A: E2MC
    /// 46/20, TSLC 60/20).
    pub fn codec_latency(&self) -> (u64, u64) {
        match self {
            Scheme::Uncompressed => (0, 0),
            Scheme::E2mc(_) => (46, 20),
            Scheme::Slc(_) => (60, 20),
        }
    }

    /// The trained lossless codec behind the scheme, if it has one.
    pub fn e2mc(&self) -> Option<&E2mc> {
        match self {
            Scheme::Uncompressed => None,
            Scheme::E2mc(e) => Some(e),
            Scheme::Slc(s) => Some(s.e2mc()),
        }
    }

    /// Functional kernel-boundary staging: rewrites safe-to-approximate
    /// regions with what a DRAM round-trip returns. Lossless schemes leave
    /// memory untouched.
    pub fn stage(&self, mem: &mut GpuMemory) {
        if let Scheme::Slc(slc) = self {
            mem.stage_approx_regions(|_region, block| slc.roundtrip(block).0);
        }
    }

    /// [`stage`](Self::stage) fused with the per-snapshot analysis pass:
    /// stages `mem` and returns the [`SnapshotAnalysis`] of the **staged**
    /// state, analysing each block exactly once.
    ///
    /// For SLC the staging round-trip already needs the block's analysis
    /// to drive its budget decision; blocks the budget keeps exact
    /// round-trip to identical bytes, so their pre-stage analysis *is*
    /// the post-stage analysis and only lossy blocks are analysed a
    /// second time (on their reconstruction, whose stored form the burst
    /// accounting must reflect — identical to analysing the staged memory
    /// from scratch, just without the redundant passes). Lossless schemes
    /// leave memory untouched and simply capture the snapshot.
    ///
    /// Returns `None` for [`Scheme::Uncompressed`], which has no trained
    /// table and needs no per-block analysis.
    pub fn stage_analyzed(&self, mem: &mut GpuMemory) -> Option<SnapshotAnalysis> {
        let e2mc = self.e2mc()?.clone(); // Arc bump, not a table copy
        if let Scheme::Slc(slc) = self {
            // Staging visits approx-region blocks in region-table order —
            // the same relative order the full entry walk below sees them
            // — so the staged analyses merge back by position, no map.
            let mut staged: Vec<BlockAnalysis> = Vec::new();
            mem.stage_approx_regions(|_region, block| {
                let analysis = e2mc.analyze(block);
                let c = slc.compress_with(block, &analysis);
                let out = slc.decompress(&c);
                // Exact modes reproduce the block bit-for-bit, so the
                // reconstruction's analysis is the one already in hand.
                staged.push(if c.is_lossy() { e2mc.analyze(&out) } else { analysis });
                out
            });
            let mut staged = staged.into_iter();
            let mut entries = Vec::new();
            for (region, addr, block) in mem.blocks_with_addr() {
                let analysis = if region.safe_to_approx {
                    staged.next().expect("one staged analysis per approx block")
                } else {
                    e2mc.analyze(block)
                };
                entries.push(AnalyzedBlock { addr, approximable: region.safe_to_approx, analysis });
            }
            debug_assert!(staged.next().is_none(), "staged analyses left over");
            Some(SnapshotAnalysis::from_entries(&e2mc, entries))
        } else {
            Some(SnapshotAnalysis::capture(&e2mc, mem))
        }
    }

    /// Bursts one block costs under `mag`, given whether it lives in a
    /// safe-to-approximate region.
    pub fn bursts_for_block(&self, block: &Block, mag: Mag, approximable: bool) -> u32 {
        match self {
            Scheme::Uncompressed => mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32),
            _ => self.bursts_for_analysis(
                &self.e2mc().expect("compressed schemes carry a table").analyze(block),
                mag,
                approximable,
            ),
        }
    }

    /// [`bursts_for_block`](Self::bursts_for_block) over a precomputed
    /// analysis — the decision sweep of the shared pipeline. `analysis`
    /// must come from this scheme's trained table (checked at the
    /// snapshot level by [`SnapshotAnalysis::matches`]).
    pub fn bursts_for_analysis(
        &self,
        analysis: &BlockAnalysis,
        mag: Mag,
        approximable: bool,
    ) -> u32 {
        match self {
            Scheme::Uncompressed => mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32),
            Scheme::E2mc(_) => mag.bursts_for_bits(analysis.e2mc_size_bits(), BLOCK_BYTES as u32),
            Scheme::Slc(s) => {
                if approximable {
                    s.stored_bursts_with(analysis)
                } else {
                    mag.bursts_for_bits(analysis.e2mc_size_bits(), BLOCK_BYTES as u32)
                }
            }
        }
    }

    /// Builds the per-block burst map of one device memory snapshot:
    /// one analysis pass, one decision sweep.
    pub fn bursts_map(&self, mem: &GpuMemory, mag: Mag) -> BurstsMap {
        let mut acc = BurstsAccumulator::new(mag);
        if let Some(e2mc) = self.e2mc() {
            acc.record(self, &SnapshotAnalysis::capture(e2mc, mem));
        }
        acc.into_map()
    }
}

/// Averages per-block burst counts over multiple memory snapshots.
///
/// Block contents — and therefore compressed sizes — evolve across
/// kernels (FWT's buffers hold the raw signal in pass 1 and fully
/// transformed data at the end). The timing simulator takes one static
/// burst map, so the harness snapshots memory at every kernel-boundary
/// DRAM round-trip and uses the per-block mean, which weights each
/// kernel's traffic equally.
///
/// Accumulation is dense and address-indexed: per-block `(sum, folds)`
/// cells live in a [`DenseAddrMap`] keyed by block ordinal, and
/// [`record`](Self::record) sweeps a snapshot's contiguous address runs
/// ([`SnapshotAnalysis::runs`]) straight through each run's cell slice —
/// the per-entry hash-and-probe of the old `HashMap` accumulator (the
/// dominant cost of the eval sweep) is gone entirely.
#[derive(Debug, Clone)]
pub struct BurstsAccumulator {
    mag: Mag,
    max: u32,
    /// Per-block (burst sum, fold count); vacant cells read (0, 0).
    cells: DenseAddrMap<(u64, u32)>,
}

impl BurstsAccumulator {
    /// Creates an accumulator for `mag`.
    pub fn new(mag: Mag) -> Self {
        let max = mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32);
        Self { mag, max, cells: DenseAddrMap::new((0, 0)) }
    }

    /// The MAG the accumulator was created for.
    pub fn mag(&self) -> Mag {
        self.mag
    }

    /// Folds one block's burst count in directly — the fault ladder's
    /// entry point ([`crate::ladder`]), whose per-block verdicts can
    /// override the plain scheme decision (a degraded block stores a
    /// deeper truncation than [`Scheme::bursts_for_analysis`] assumes).
    pub fn record_one(&mut self, addr: BlockAddr, bursts: u32) {
        let cell = &mut self.cells.run_slice(addr, 1)[0];
        cell.0 += u64::from(bursts);
        cell.1 += 1;
    }

    /// Records the burst counts of every region block in `mem` under
    /// `scheme`, borrowing each block in place (no region-table clone,
    /// no per-block copy). This is the re-encoding reference path; the
    /// shared pipeline records precomputed analyses via
    /// [`record`](Self::record).
    pub fn snapshot(&mut self, scheme: &Scheme, mem: &GpuMemory) {
        if matches!(scheme, Scheme::Uncompressed) {
            return;
        }
        let mag = self.mag;
        for (region, addr, block) in mem.blocks_with_addr() {
            let bursts = scheme.bursts_for_block(block, mag, region.safe_to_approx);
            let cell = &mut self.cells.run_slice(addr, 1)[0];
            cell.0 += u64::from(bursts);
            cell.1 += 1;
        }
    }

    /// Records one already-analysed snapshot under `scheme`: the cheap
    /// decision sweep of the shared pipeline — no block is re-encoded,
    /// and each contiguous address run of the snapshot updates its dense
    /// cell slice by index (no per-entry map probe).
    ///
    /// # Panics
    ///
    /// Panics when the snapshot was analysed with a different trained
    /// table than the scheme's (the analyses would be meaningless).
    pub fn record(&mut self, scheme: &Scheme, snapshot: &SnapshotAnalysis) {
        let Some(e2mc) = scheme.e2mc() else {
            return; // Uncompressed records nothing, as in `snapshot`.
        };
        assert!(
            snapshot.matches(e2mc),
            "snapshot analysed under a different trained table than the scheme's"
        );
        let mag = self.mag;
        for run in snapshot.runs() {
            let cells = self.cells.run_slice(run[0].addr, run.len());
            for (cell, b) in cells.iter_mut().zip(run) {
                let bursts = scheme.bursts_for_analysis(&b.analysis, mag, b.approximable);
                cell.0 += u64::from(bursts);
                cell.1 += 1;
            }
        }
    }

    /// [`record`](Self::record) over a size-only [`SizeSnapshot`] — the
    /// E2MC-baseline sweep against the slim cache. Only the lossless
    /// E2MC scheme can be swept from stored sizes alone: its burst count
    /// is a pure function of the size, while an SLC decision needs the
    /// full per-symbol code lengths (and [`Scheme::Uncompressed`] records
    /// nothing, as everywhere else).
    ///
    /// # Panics
    ///
    /// Panics when `scheme` is an SLC variant, or when the snapshot's
    /// trained table is not the scheme's.
    pub fn record_sizes(&mut self, scheme: &Scheme, snapshot: &SizeSnapshot) {
        let Some(e2mc) = scheme.e2mc() else {
            return;
        };
        assert!(
            matches!(scheme, Scheme::E2mc(_)),
            "size-only snapshots serve the lossless E2MC baseline; SLC decisions need full analyses"
        );
        assert!(
            snapshot.matches(e2mc),
            "snapshot analysed under a different trained table than the scheme's"
        );
        let mag = self.mag;
        for run in snapshot.runs() {
            let cells = self.cells.run_slice(run[0].addr, run.len());
            for (cell, b) in cells.iter_mut().zip(run) {
                let bursts = mag.bursts_for_bits(b.e2mc_size_bits(), BLOCK_BYTES as u32);
                cell.0 += u64::from(bursts);
                cell.1 += 1;
            }
        }
    }

    /// Number of snapshots folded in: the minimum fold count over all
    /// recorded blocks (blocks first seen in a late snapshot report
    /// fewer folds).
    pub fn snapshots(&self) -> u32 {
        self.cells.iter().map(|(_, (_, n))| n).min().unwrap_or(0)
    }

    /// Finishes into a [`BurstsMap`] of per-block rounded means.
    ///
    /// **Every** recorded block is mapped, including those whose mean
    /// rounds to the uncompressed maximum (they resolve to the same
    /// burst count either way, so timing is unaffected) — the map then
    /// knows the full recorded population and
    /// [`BurstsMap::mean_bursts`] is a well-defined mean over *all*
    /// blocks of the snapshots, comparable across schemes that compress
    /// different subsets.
    pub fn into_map(self) -> BurstsMap {
        let mut map = BurstsMap::new(self.max);
        for (addr, (sum, n)) in self.cells.iter() {
            let mean = ((sum as f64 / f64::from(n)).round() as u32).clamp(1, self.max);
            map.insert(addr, mean);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::e2mc::E2mcConfig;

    fn trained() -> E2mc {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 512) as f32).to_le_bytes()).collect();
        E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
    }

    fn filled_memory() -> GpuMemory {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 1024, true, 16);
        let e = m.malloc("exact", 1024, false, 0);
        let vals: Vec<f32> = (0..256).map(|i| (i % 512) as f32).collect();
        m.write_f32(a, &vals);
        m.write_f32(e, &vals);
        m
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchemeKind::Uncompressed.label(), "NOCOMP");
        assert_eq!(SchemeKind::E2mc.label(), "E2MC");
        assert_eq!(SchemeKind::Slc(SlcVariant::TslcOpt).label(), "TSLC-OPT");
    }

    #[test]
    fn latencies_match_paper() {
        assert_eq!(Scheme::Uncompressed.codec_latency(), (0, 0));
        assert_eq!(Scheme::E2mc(trained()).codec_latency(), (46, 20));
        let s = Scheme::slc(trained(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        assert_eq!(s.codec_latency(), (60, 20));
    }

    #[test]
    fn lossless_schemes_never_mutate_memory() {
        let mut mem = filled_memory();
        let before = mem.read_f32(slc_sim::DevicePtr(0), 256);
        Scheme::Uncompressed.stage(&mut mem);
        Scheme::E2mc(trained()).stage(&mut mem);
        assert_eq!(mem.read_f32(slc_sim::DevicePtr(0), 256), before);
    }

    #[test]
    fn slc_stages_only_approx_regions() {
        let mut mem = filled_memory();
        let exact_before = mem.read_f32(slc_sim::DevicePtr(1024), 256);
        let s = Scheme::slc(trained(), Mag::GDDR5, 16, SlcVariant::TslcSimp);
        s.stage(&mut mem);
        assert_eq!(
            mem.read_f32(slc_sim::DevicePtr(1024), 256),
            exact_before,
            "exact region must be untouched"
        );
    }

    #[test]
    fn bursts_map_compresses_compressible_blocks() {
        let mem = filled_memory();
        let scheme = Scheme::E2mc(trained());
        let map = scheme.bursts_map(&mem, Mag::GDDR5);
        assert!(!map.is_empty(), "in-distribution data should compress below 4 bursts");
        assert!(map.mean_bursts() < 4.0);
    }

    #[test]
    fn uncompressed_map_is_empty() {
        let mem = filled_memory();
        let map = Scheme::Uncompressed.bursts_map(&mem, Mag::GDDR5);
        assert!(map.is_empty());
    }

    #[test]
    fn record_sweep_equals_direct_snapshot() {
        let e = trained();
        let mem = filled_memory();
        for scheme in [
            Scheme::E2mc(e.clone()),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt),
            Scheme::slc(e.clone(), Mag::NARROW_16, 8, SlcVariant::TslcSimp),
        ] {
            let mut direct = BurstsAccumulator::new(Mag::GDDR5);
            direct.snapshot(&scheme, &mem);
            let snap = SnapshotAnalysis::capture(scheme.e2mc().unwrap(), &mem);
            let mut swept = BurstsAccumulator::new(Mag::GDDR5);
            swept.record(&scheme, &snap);
            assert_eq!(direct.into_map(), swept.into_map());
        }
    }

    #[test]
    fn record_sizes_equals_record_for_the_e2mc_baseline() {
        let e = trained();
        let mem = filled_memory();
        let scheme = Scheme::E2mc(e.clone());
        let full = SnapshotAnalysis::capture(&e, &mem);
        let slim = SizeSnapshot::capture(&e, &mem);
        let mut a = BurstsAccumulator::new(Mag::GDDR5);
        a.record(&scheme, &full);
        let mut b = BurstsAccumulator::new(Mag::GDDR5);
        b.record_sizes(&scheme, &slim);
        assert_eq!(a.into_map(), b.into_map());
    }

    #[test]
    #[should_panic(expected = "size-only snapshots serve the lossless E2MC baseline")]
    fn record_sizes_rejects_slc_schemes() {
        let e = trained();
        let slim = SizeSnapshot::capture(&e, &filled_memory());
        let scheme = Scheme::slc(e, Mag::GDDR5, 16, SlcVariant::TslcOpt);
        BurstsAccumulator::new(Mag::GDDR5).record_sizes(&scheme, &slim);
    }

    #[test]
    #[should_panic(expected = "different trained table")]
    fn record_rejects_foreign_tables() {
        let mem = filled_memory();
        let snap = SnapshotAnalysis::capture(&trained(), &mem);
        let scheme = Scheme::E2mc(trained()); // separately trained model
        BurstsAccumulator::new(Mag::GDDR5).record(&scheme, &snap);
    }

    #[test]
    fn snapshot_count_is_min_over_blocks() {
        let e = trained();
        let scheme = Scheme::E2mc(e);
        let small = filled_memory();
        let mut bigger = filled_memory();
        let extra = bigger.malloc("late", 256, true, 16);
        bigger.write_f32(extra, &vec![3.0f32; 64]);
        let mut acc = BurstsAccumulator::new(Mag::GDDR5);
        acc.snapshot(&scheme, &small);
        assert_eq!(acc.snapshots(), 1);
        acc.snapshot(&scheme, &small);
        assert_eq!(acc.snapshots(), 2);
        // Blocks of the extra region have been folded only once; the
        // deterministic answer is the minimum, never whichever block the
        // hash map happens to yield first.
        acc.snapshot(&scheme, &bigger);
        assert_eq!(acc.snapshots(), 1);
    }

    #[test]
    fn stage_analyzed_matches_stage_then_capture() {
        let e = trained();
        for scheme in [
            Scheme::E2mc(e.clone()),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcSimp),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcPred),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt),
        ] {
            let mut fused_mem = filled_memory();
            let snap = scheme.stage_analyzed(&mut fused_mem).expect("scheme has a table");
            let mut legacy_mem = filled_memory();
            scheme.stage(&mut legacy_mem);
            assert_eq!(
                legacy_mem.read_f32(slc_sim::DevicePtr(0), 256),
                fused_mem.read_f32(slc_sim::DevicePtr(0), 256),
                "fused staging must mutate memory identically"
            );
            let reference = SnapshotAnalysis::capture(scheme.e2mc().unwrap(), &legacy_mem);
            assert_eq!(snap.entries().len(), reference.entries().len());
            for (got, want) in snap.entries().iter().zip(reference.entries()) {
                assert_eq!(got.addr, want.addr);
                assert_eq!(got.approximable, want.approximable);
                assert_eq!(got.analysis, want.analysis, "block {}", got.addr);
            }
        }
        assert!(Scheme::Uncompressed.stage_analyzed(&mut filled_memory()).is_none());
    }

    #[test]
    fn slc_bursts_never_exceed_lossless() {
        let e = trained();
        let slc = Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        let lossless = Scheme::E2mc(e);
        let mut block = [0u8; BLOCK_BYTES];
        for (i, c) in block.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&(((i * 3) % 512) as f32).to_le_bytes());
        }
        let a = slc.bursts_for_block(&block, Mag::GDDR5, true);
        let b = lossless.bursts_for_block(&block, Mag::GDDR5, true);
        assert!(a <= b);
    }
}

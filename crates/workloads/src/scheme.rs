//! Compression schemes as the memory system applies them.
//!
//! Lossless compression (E2MC here) applies to *all* DRAM traffic; the
//! lossy SLC mode additionally applies to blocks inside
//! safe-to-approximate regions. A [`Scheme`] bundles the functional
//! staging pass (what data looks like after a DRAM round-trip), the burst
//! accounting for the timing simulator, and the codec latencies of
//! Section IV-A.

use slc_compress::e2mc::E2mc;
use slc_compress::{Block, BlockCompressor, Mag, BLOCK_BYTES};
use slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc_sim::mc::BurstsMap;
use slc_sim::{GpuMemory, Region};

/// Identifies a scheme in figures and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No compression: every block moves at full burst count.
    Uncompressed,
    /// Lossless E2MC (the paper's baseline).
    E2mc,
    /// One of the TSLC variants.
    Slc(SlcVariant),
}

impl SchemeKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Uncompressed => "NOCOMP",
            SchemeKind::E2mc => "E2MC",
            SchemeKind::Slc(v) => v.label(),
        }
    }
}

/// A runnable compression scheme.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// No compression.
    Uncompressed,
    /// Lossless E2MC on all traffic.
    E2mc(E2mc),
    /// E2MC on all traffic; SLC lossy mode on safe-to-approximate regions.
    Slc(SlcCompressor),
}

impl Scheme {
    /// Builds the SLC scheme from a trained baseline.
    ///
    /// `e2mc` is a shared handle to the frozen symbol table (cloning one
    /// is an `Arc` refcount bump), so callers build as many schemes per
    /// trained model as they like — one per TSLC variant, per threshold,
    /// per thread — without ever copying the trained tables.
    pub fn slc(e2mc: E2mc, mag: Mag, threshold_bytes: u32, variant: SlcVariant) -> Self {
        Scheme::Slc(SlcCompressor::new(e2mc, SlcConfig::new(mag, threshold_bytes, variant)))
    }

    /// The scheme's identity.
    pub fn kind(&self) -> SchemeKind {
        match self {
            Scheme::Uncompressed => SchemeKind::Uncompressed,
            Scheme::E2mc(_) => SchemeKind::E2mc,
            Scheme::Slc(s) => SchemeKind::Slc(s.config().variant()),
        }
    }

    /// (compress, decompress) latency in SM cycles (paper §IV-A: E2MC
    /// 46/20, TSLC 60/20).
    pub fn codec_latency(&self) -> (u64, u64) {
        match self {
            Scheme::Uncompressed => (0, 0),
            Scheme::E2mc(_) => (46, 20),
            Scheme::Slc(_) => (60, 20),
        }
    }

    /// Functional kernel-boundary staging: rewrites safe-to-approximate
    /// regions with what a DRAM round-trip returns. Lossless schemes leave
    /// memory untouched.
    pub fn stage(&self, mem: &mut GpuMemory) {
        if let Scheme::Slc(slc) = self {
            mem.stage_approx_regions(|_region, block| slc.roundtrip(block).0);
        }
    }

    /// Bursts one block costs under `mag`, given whether it lives in a
    /// safe-to-approximate region.
    pub fn bursts_for_block(&self, block: &Block, mag: Mag, approximable: bool) -> u32 {
        let max = mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32);
        match self {
            Scheme::Uncompressed => max,
            Scheme::E2mc(e) => mag.bursts_for_bits(e.size_bits(block), BLOCK_BYTES as u32),
            Scheme::Slc(s) => {
                if approximable {
                    s.stored_bursts(block)
                } else {
                    mag.bursts_for_bits(s.e2mc().size_bits(block), BLOCK_BYTES as u32)
                }
            }
        }
    }

    /// Builds the per-block burst map of one device memory snapshot.
    pub fn bursts_map(&self, mem: &GpuMemory, mag: Mag) -> BurstsMap {
        let mut acc = BurstsAccumulator::new(mag);
        acc.snapshot(self, mem);
        acc.into_map()
    }
}

/// Averages per-block burst counts over multiple memory snapshots.
///
/// Block contents — and therefore compressed sizes — evolve across
/// kernels (FWT's buffers hold the raw signal in pass 1 and fully
/// transformed data at the end). The timing simulator takes one static
/// burst map, so the harness snapshots memory at every kernel-boundary
/// DRAM round-trip and uses the per-block mean, which weights each
/// kernel's traffic equally.
#[derive(Debug, Clone)]
pub struct BurstsAccumulator {
    mag: Mag,
    max: u32,
    sums: std::collections::HashMap<u64, (u64, u32)>,
}

impl BurstsAccumulator {
    /// Creates an accumulator for `mag`.
    pub fn new(mag: Mag) -> Self {
        let max = mag.bursts_for_bytes(BLOCK_BYTES as u32, BLOCK_BYTES as u32);
        Self { mag, max, sums: std::collections::HashMap::new() }
    }

    /// Records the burst counts of every region block in `mem` under
    /// `scheme`.
    pub fn snapshot(&mut self, scheme: &Scheme, mem: &GpuMemory) {
        if matches!(scheme, Scheme::Uncompressed) {
            return;
        }
        let regions: Vec<Region> = mem.regions().to_vec();
        for region in &regions {
            let bytes = mem.region_bytes(region);
            for (i, chunk) in bytes.chunks_exact(BLOCK_BYTES).enumerate() {
                let mut block = [0u8; BLOCK_BYTES];
                block.copy_from_slice(chunk);
                let addr = region.base / BLOCK_BYTES as u64 + i as u64;
                let bursts = scheme.bursts_for_block(&block, self.mag, region.safe_to_approx);
                let e = self.sums.entry(addr).or_insert((0, 0));
                e.0 += u64::from(bursts);
                e.1 += 1;
            }
        }
    }

    /// Number of snapshots folded in for the first recorded block.
    pub fn snapshots(&self) -> u32 {
        self.sums.values().next().map_or(0, |&(_, n)| n)
    }

    /// Finishes into a [`BurstsMap`] of per-block rounded means.
    pub fn into_map(self) -> BurstsMap {
        let mut map = BurstsMap::new(self.max);
        for (addr, (sum, n)) in self.sums {
            let mean = ((sum as f64 / f64::from(n)).round() as u32).clamp(1, self.max);
            if mean != self.max {
                map.insert(addr, mean);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::e2mc::E2mcConfig;

    fn trained() -> E2mc {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 512) as f32).to_le_bytes()).collect();
        E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
    }

    fn filled_memory() -> GpuMemory {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 1024, true, 16);
        let e = m.malloc("exact", 1024, false, 0);
        let vals: Vec<f32> = (0..256).map(|i| (i % 512) as f32).collect();
        m.write_f32(a, &vals);
        m.write_f32(e, &vals);
        m
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchemeKind::Uncompressed.label(), "NOCOMP");
        assert_eq!(SchemeKind::E2mc.label(), "E2MC");
        assert_eq!(SchemeKind::Slc(SlcVariant::TslcOpt).label(), "TSLC-OPT");
    }

    #[test]
    fn latencies_match_paper() {
        assert_eq!(Scheme::Uncompressed.codec_latency(), (0, 0));
        assert_eq!(Scheme::E2mc(trained()).codec_latency(), (46, 20));
        let s = Scheme::slc(trained(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        assert_eq!(s.codec_latency(), (60, 20));
    }

    #[test]
    fn lossless_schemes_never_mutate_memory() {
        let mut mem = filled_memory();
        let before = mem.read_f32(slc_sim::DevicePtr(0), 256);
        Scheme::Uncompressed.stage(&mut mem);
        Scheme::E2mc(trained()).stage(&mut mem);
        assert_eq!(mem.read_f32(slc_sim::DevicePtr(0), 256), before);
    }

    #[test]
    fn slc_stages_only_approx_regions() {
        let mut mem = filled_memory();
        let exact_before = mem.read_f32(slc_sim::DevicePtr(1024), 256);
        let s = Scheme::slc(trained(), Mag::GDDR5, 16, SlcVariant::TslcSimp);
        s.stage(&mut mem);
        assert_eq!(
            mem.read_f32(slc_sim::DevicePtr(1024), 256),
            exact_before,
            "exact region must be untouched"
        );
    }

    #[test]
    fn bursts_map_compresses_compressible_blocks() {
        let mem = filled_memory();
        let scheme = Scheme::E2mc(trained());
        let map = scheme.bursts_map(&mem, Mag::GDDR5);
        assert!(!map.is_empty(), "in-distribution data should compress below 4 bursts");
        assert!(map.mean_bursts() < 4.0);
    }

    #[test]
    fn uncompressed_map_is_empty() {
        let mem = filled_memory();
        let map = Scheme::Uncompressed.bursts_map(&mem, Mag::GDDR5);
        assert!(map.is_empty());
    }

    #[test]
    fn slc_bursts_never_exceed_lossless() {
        let e = trained();
        let slc = Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        let lossless = Scheme::E2mc(e);
        let mut block = [0u8; BLOCK_BYTES];
        for (i, c) in block.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&(((i * 3) % 512) as f32).to_le_bytes());
        }
        let a = slc.bursts_for_block(&block, Mag::GDDR5, true);
        let b = lossless.bursts_for_block(&block, Mag::GDDR5, true);
        assert!(a <= b);
    }
}

//! Snapshot-level sharing of per-block E2MC analyses.
//!
//! A memory snapshot (one kernel-boundary state of a [`GpuMemory`]) is
//! analysed **once** under the trained table — one
//! [`E2mc::analyze`] pass per block, parallelised over blocks with
//! `slc-par` — and the resulting [`SnapshotAnalysis`] then serves every
//! consumer that would otherwise re-derive the same code lengths:
//!
//! * [`BurstsAccumulator`](crate::scheme::BurstsAccumulator) decision
//!   sweeps for any number of schemes, MAGs and thresholds;
//! * the Fig. 2 heat map and the §V-C compression-ratio studies, which
//!   bucket the same per-block sizes;
//! * the Fig. 9 MAG/threshold sweeps, which re-decide but never
//!   re-encode.
//!
//! Analyses are only meaningful against the trained table that produced
//! them, so a snapshot carries the `Arc` identity of its table and
//! consumers verify it with [`SnapshotAnalysis::matches`].

use slc_compress::e2mc::{BlockAnalysis, E2mc, SymbolTable};
use slc_compress::Block;
use slc_sim::{BlockAddr, GpuMemory};
use std::sync::Arc;

/// One analysed block of a snapshot.
#[derive(Debug, Clone)]
pub struct AnalyzedBlock {
    /// Block address (`region.base / BLOCK_BYTES + index`).
    pub addr: BlockAddr,
    /// Whether the owning region is marked safe to approximate.
    pub approximable: bool,
    /// The block's shared analysis (code lengths + total bits).
    pub analysis: BlockAnalysis,
}

/// Per-block analyses of one memory snapshot under one trained table.
///
/// Entries are ordered exactly as [`GpuMemory::all_blocks`] iterates
/// (region table order, ascending block offset within each region), so
/// order-sensitive consumers — floating-point ratio accumulators, report
/// rows — produce byte-identical output to a direct walk over memory.
#[derive(Debug, Clone)]
pub struct SnapshotAnalysis {
    entries: Vec<AnalyzedBlock>,
    /// Identity of the trained model the analyses were computed with.
    table: Arc<SymbolTable>,
}

impl SnapshotAnalysis {
    /// Analyses every region block of `mem` under `e2mc`, one E2MC pass
    /// per block, fanned out across **chunks** of blocks with
    /// [`slc_par::par_map`] (order-preserving, so the entry order is
    /// identical to a serial walk). Chunking keeps the per-item work
    /// coarse enough to amortise the pool's hand-off cost — a single
    /// block analyses in tens of nanoseconds — and degenerates to one
    /// plain loop on single-core hosts.
    pub fn capture(e2mc: &E2mc, mem: &GpuMemory) -> Self {
        /// Blocks per parallel work item (≈ a few hundred µs of work).
        const CHUNK_BLOCKS: usize = 4096;
        let blocks: Vec<(BlockAddr, bool, &Block)> = mem
            .blocks_with_addr()
            .map(|(region, addr, block)| (addr, region.safe_to_approx, block))
            .collect();
        let analyzed = slc_par::par_map(blocks.chunks(CHUNK_BLOCKS).collect(), |chunk| {
            chunk
                .iter()
                .map(|&(addr, approximable, block)| AnalyzedBlock {
                    addr,
                    approximable,
                    analysis: e2mc.analyze(block),
                })
                .collect::<Vec<_>>()
        });
        let entries = analyzed.into_iter().flatten().collect();
        Self { entries, table: Arc::clone(e2mc.shared_table()) }
    }

    /// Builds a snapshot from already-analysed blocks (the harness' fused
    /// stage-and-analyse pass, which computes each analysis as a side
    /// effect of staging).
    pub fn from_entries(e2mc: &E2mc, entries: Vec<AnalyzedBlock>) -> Self {
        Self { entries, table: Arc::clone(e2mc.shared_table()) }
    }

    /// The analysed blocks, in [`GpuMemory::all_blocks`] order.
    pub fn entries(&self) -> &[AnalyzedBlock] {
        &self.entries
    }

    /// Maximal runs of entries with consecutive block addresses, in entry
    /// order — the dense-record fast path. Regions are block-contiguous
    /// and allocated back to back, so a snapshot usually decomposes into
    /// a single run; a dense accumulator materialises each run's cells
    /// once and sweeps them by index, with no per-entry map probe of any
    /// kind.
    pub fn runs(&self) -> impl Iterator<Item = &[AnalyzedBlock]> + '_ {
        let entries = &self.entries;
        let mut pos = 0usize;
        std::iter::from_fn(move || {
            if pos >= entries.len() {
                return None;
            }
            let start = pos;
            pos += 1;
            while pos < entries.len() && entries[pos].addr == entries[pos - 1].addr + 1 {
                pos += 1;
            }
            Some(&entries[start..pos])
        })
    }

    /// `true` when the snapshot was analysed with exactly `e2mc`'s
    /// trained table (the `Arc` allocation, not value equality) — the
    /// precondition for feeding it to any scheme built on that table.
    pub fn matches(&self, e2mc: &E2mc) -> bool {
        Arc::ptr_eq(&self.table, e2mc.shared_table())
    }

    /// Slims the snapshot down to its [`SizeSnapshot`]: per-block stored
    /// sizes only, the full code-length artifacts dropped.
    pub fn to_sizes(&self) -> SizeSnapshot {
        SizeSnapshot {
            entries: self
                .entries
                .iter()
                .map(|b| SizedBlock {
                    addr: b.addr,
                    approximable: b.approximable,
                    size_bits: b.analysis.e2mc_size_bits(),
                })
                .collect(),
            table: Arc::clone(&self.table),
        }
    }
}

/// One block of a [`SizeSnapshot`]: address, region class and the E2MC
/// stored size — nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizedBlock {
    /// Block address (`region.base / BLOCK_BYTES + index`).
    pub addr: BlockAddr,
    /// Whether the owning region is marked safe to approximate.
    pub approximable: bool,
    /// E2MC stored size in bits, capped at the verbatim block
    /// (== [`BlockAnalysis::e2mc_size_bits`] of the full analysis).
    pub size_bits: u32,
}

impl SizedBlock {
    /// The block's E2MC stored size in bits — named to mirror
    /// [`BlockAnalysis::e2mc_size_bits`], so size-only consumers read
    /// identically against either representation.
    pub fn e2mc_size_bits(&self) -> u32 {
        self.size_bits
    }
}

/// The size-bits-only variant of [`SnapshotAnalysis`].
///
/// A full [`BlockAnalysis`] is 196 B of per-symbol code lengths and tree
/// sums; consumers that only ever read the block's *stored size* — the
/// E2MC-baseline burst sweep, the fault ladder's escalation counters —
/// pay for none of that here: one `u32` per block, a ~49× smaller
/// footprint per cached snapshot. Captured directly via
/// [`E2mc::stored_size_bits`] (a dense-table sum, no tree walk), or
/// slimmed from a full snapshot with [`SnapshotAnalysis::to_sizes`];
/// both pin the identical size the full analysis reports.
///
/// Like its full-fat sibling it carries the trained table's `Arc`
/// identity, entries in [`GpuMemory::all_blocks`] order, and a
/// [`runs`](Self::runs) decomposition for dense accumulators.
#[derive(Debug, Clone)]
pub struct SizeSnapshot {
    entries: Vec<SizedBlock>,
    /// Identity of the trained model the sizes were computed with.
    table: Arc<SymbolTable>,
}

impl SizeSnapshot {
    /// Captures every region block's stored size under `e2mc`, chunked
    /// across the pool exactly like [`SnapshotAnalysis::capture`].
    pub fn capture(e2mc: &E2mc, mem: &GpuMemory) -> Self {
        /// Blocks per parallel work item (sizing is cheaper than a full
        /// analysis, so work items are coarser).
        const CHUNK_BLOCKS: usize = 8192;
        let blocks: Vec<(BlockAddr, bool, &Block)> = mem
            .blocks_with_addr()
            .map(|(region, addr, block)| (addr, region.safe_to_approx, block))
            .collect();
        let sized = slc_par::par_map(blocks.chunks(CHUNK_BLOCKS).collect(), |chunk| {
            chunk
                .iter()
                .map(|&(addr, approximable, block)| SizedBlock {
                    addr,
                    approximable,
                    size_bits: e2mc.stored_size_bits(block),
                })
                .collect::<Vec<_>>()
        });
        let entries = sized.into_iter().flatten().collect();
        Self { entries, table: Arc::clone(e2mc.shared_table()) }
    }

    /// The sized blocks, in [`GpuMemory::all_blocks`] order.
    pub fn entries(&self) -> &[SizedBlock] {
        &self.entries
    }

    /// Maximal runs of entries with consecutive block addresses — see
    /// [`SnapshotAnalysis::runs`].
    pub fn runs(&self) -> impl Iterator<Item = &[SizedBlock]> + '_ {
        let entries = &self.entries;
        let mut pos = 0usize;
        std::iter::from_fn(move || {
            if pos >= entries.len() {
                return None;
            }
            let start = pos;
            pos += 1;
            while pos < entries.len() && entries[pos].addr == entries[pos - 1].addr + 1 {
                pos += 1;
            }
            Some(&entries[start..pos])
        })
    }

    /// `true` when the sizes were computed with exactly `e2mc`'s trained
    /// table — see [`SnapshotAnalysis::matches`].
    pub fn matches(&self, e2mc: &E2mc) -> bool {
        Arc::ptr_eq(&self.table, e2mc.shared_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_compress::e2mc::E2mcConfig;
    use slc_compress::BLOCK_BYTES;

    fn trained() -> E2mc {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 512) as f32).to_le_bytes()).collect();
        E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
    }

    fn memory() -> GpuMemory {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 512, true, 16);
        let e = m.malloc("exact", 256, false, 0);
        let vals: Vec<f32> = (0..128).map(|i| (i % 512) as f32).collect();
        m.write_f32(a, &vals);
        m.write_f32(e, &vals[..64]);
        m
    }

    #[test]
    fn capture_matches_a_direct_walk() {
        let e2mc = trained();
        let mem = memory();
        let snap = SnapshotAnalysis::capture(&e2mc, &mem);
        let direct: Vec<(BlockAddr, bool, BlockAnalysis)> = {
            let mut out = Vec::new();
            for region in mem.regions() {
                for (i, chunk) in mem.region_bytes(region).chunks_exact(BLOCK_BYTES).enumerate() {
                    let block: &Block = chunk.try_into().unwrap();
                    out.push((
                        region.base / BLOCK_BYTES as u64 + i as u64,
                        region.safe_to_approx,
                        e2mc.analyze(block),
                    ));
                }
            }
            out
        };
        assert_eq!(snap.entries().len(), direct.len());
        for (got, want) in snap.entries().iter().zip(&direct) {
            assert_eq!(got.addr, want.0);
            assert_eq!(got.approximable, want.1);
            assert_eq!(got.analysis, want.2);
        }
    }

    #[test]
    fn size_snapshot_pins_the_full_analysis_sizes() {
        let e2mc = trained();
        let mem = memory();
        let full = SnapshotAnalysis::capture(&e2mc, &mem);
        let slim = SizeSnapshot::capture(&e2mc, &mem);
        assert_eq!(slim.entries().len(), full.entries().len());
        for (s, f) in slim.entries().iter().zip(full.entries()) {
            assert_eq!(s.addr, f.addr);
            assert_eq!(s.approximable, f.approximable);
            assert_eq!(s.e2mc_size_bits(), f.analysis.e2mc_size_bits(), "block {}", s.addr);
        }
        // Slimming a full snapshot is the same thing.
        let slimmed = full.to_sizes();
        assert_eq!(slimmed.entries(), slim.entries());
        assert!(slimmed.matches(&e2mc));
        // Run decomposition is identical too.
        let full_runs: Vec<usize> = full.runs().map(<[AnalyzedBlock]>::len).collect();
        let slim_runs: Vec<usize> = slim.runs().map(<[SizedBlock]>::len).collect();
        assert_eq!(full_runs, slim_runs);
    }

    #[test]
    fn size_snapshot_matches_is_table_identity() {
        let e2mc = trained();
        let snap = SizeSnapshot::capture(&e2mc, &memory());
        assert!(snap.matches(&e2mc.clone()));
        assert!(!snap.matches(&trained()));
    }

    #[test]
    fn matches_is_table_identity() {
        let e2mc = trained();
        let mem = memory();
        let snap = SnapshotAnalysis::capture(&e2mc, &mem);
        assert!(snap.matches(&e2mc));
        assert!(snap.matches(&e2mc.clone()), "clones share the table");
        let other = trained();
        assert!(!snap.matches(&other), "a retrained table is a different model");
    }
}

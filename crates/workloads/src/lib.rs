//! The nine memory-bound, approximation-tolerant benchmarks of the SLC
//! paper (Table III), re-implemented functionally in Rust with synthetic
//! inputs, plus the machinery to run them under compression schemes.
//!
//! | Name  | Description                  | Error metric | #AR |
//! |-------|------------------------------|--------------|-----|
//! | JM    | Intersection of triangles    | Miss rate    | 6   |
//! | BS    | Options pricing              | MRE          | 4   |
//! | DCT   | Discrete cosine transform    | Image diff   | 2   |
//! | FWT   | Fast Walsh transform         | NRMSE        | 2   |
//! | TP    | Matrix transpose             | NRMSE        | 2   |
//! | BP    | Perceptron training          | MRE          | 6   |
//! | NN    | Nearest neighbors            | MRE          | 2   |
//! | SRAD1 | Anisotropic diffusion (v1)   | Image diff   | 8   |
//! | SRAD2 | Anisotropic diffusion (v2)   | Image diff   | 6   |
//!
//! Each benchmark provides (a) a seeded input generator, (b) the kernel
//! pipeline executed against [`slc_sim::GpuMemory`] with staging callbacks
//! at every kernel-boundary DRAM round-trip, (c) a memory trace with the
//! kernel's real access pattern, and (d) its error metric.
//!
//! [`harness`] glues benchmarks to compression [`scheme`]s and the timing
//! simulator; the `slc-exp` crate builds every paper figure from it.
//! [`analysis`] holds the snapshot-level cache of per-block E2MC analyses
//! (one `E2mc::analyze` pass per memory snapshot, swept by any number of
//! schemes, MAGs and thresholds — the shared pipeline described in the
//! `slc-core` crate docs); [`engine`] feeds those cached analyses to the
//! `slc-engine` batch container path with zero re-analysis.
//! [`ladder`] adds the graceful-degradation
//! ladder that lets every scheme run on DRAM with permanently failed
//! regions ([`slc_sim::fault`]): exact → lossless → lossy → spare-pool
//! remap → uncorrectable, resolved deterministically per snapshot.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod benchmarks;
pub mod engine;
pub mod gen;
pub mod harness;
pub mod ladder;
pub mod metrics;
pub mod scheme;
pub mod suite;

pub use analysis::{AnalyzedBlock, SizeSnapshot, SizedBlock, SnapshotAnalysis};
pub use engine::{compress_snapshot, snapshot_bytes, snapshot_engine};
pub use harness::{BenchmarkArtifacts, FunctionalOutcome, Harness, TimingOutcome};
pub use ladder::{LadderState, LadderVerdict};
pub use scheme::{Scheme, SchemeKind};
pub use suite::{all_workloads, workload_by_name, Scale, Workload};

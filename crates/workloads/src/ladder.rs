//! The graceful-degradation ladder: fitting blocks into faulty DRAM rows.
//!
//! When [`slc_sim::GpuConfig::fault`] is set, every kernel-boundary
//! staging pass walks this ladder per block instead of the plain scheme
//! decision. The rungs, in order:
//!
//! 1. **Exact / natural** — healthy rows, and faulty rows whose
//!    fault-free stored form already fits the surviving capacity, take
//!    the ordinary pipeline path. A zero-density fault map therefore
//!    stages and records byte-identically to no fault map at all
//!    (pinned by integration tests).
//! 2. **Lossless squeeze** — SLC blocks the fault-free pipeline stores
//!    verbatim, but whose full lossless stream fits the budget: compress
//!    for capacity. No data loss, so this rung is *not* an escalation.
//! 3. **Deeper lossy** — a deeper truncation than the fault-free
//!    decision ([`SlcCompressor::fit_within_with`]), reusing the cached
//!    [`BlockAnalysis`] — no block is ever re-encoded to make the
//!    decision. Counted per (snapshot, block) as a *fault escalation*.
//! 4. **Remap** — the block's data moves to a bounded spare pool
//!    (first-come first-served, never freed); the timing side charges
//!    the indirection — a pointer burst plus the spare row's own DRAM
//!    access through the FR-FCFS channel model.
//! 5. **Uncorrectable** — no stored form fits and the pool is
//!    exhausted. Real hardware loses the data; the functional model
//!    keeps it intact and only counts the block, so capacity curves
//!    read `1 - uncorrectable / total`.
//!
//! Resolution order is deterministic: blocks resolve in
//! [`GpuMemory::all_blocks`] order within each snapshot, so the spare
//! pool's FCFS assignment — and with it every counter — replays exactly
//! under a fixed seed.

use crate::scheme::{BurstsAccumulator, Scheme};
use slc_compress::e2mc::BlockAnalysis;
use slc_compress::BLOCK_BYTES;
use slc_core::slc::FitOutcome;
use slc_core::{Selection, SlcCompressor};
use slc_sim::fault::{FaultCounters, FaultMap, RemapTable};
use slc_sim::{BlockAddr, FaultPlan, GpuConfig, GpuMemory};
use std::collections::HashSet;

/// One block's ladder verdict for one snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LadderVerdict {
    /// Healthy row, or the fault-free stored form fits the surviving
    /// capacity: stage and record exactly as without faults.
    Intact,
    /// Store the full lossless stream in place of the verbatim block
    /// (SLC only; no data loss, no escalation).
    SqueezeLossless,
    /// Store a deeper truncation than the fault-free decision; counted
    /// as a fault escalation.
    Degrade {
        /// The Fig. 5 selection the deeper truncation uses.
        selection: Selection,
        /// The faulty row's surviving capacity the stream must fit.
        budget_bits: u32,
    },
    /// The block lives in the spare pool; it stages and records its
    /// fault-free form (the spare row is healthy) and the timing side
    /// pays the indirection.
    Remapped,
    /// Lost on real hardware; kept intact and counted here.
    Uncorrectable,
}

/// Ladder state carried across the kernel-boundary snapshots of one
/// functional run: the fault map, the spare pool, the set of blocks
/// already given up on, and the running counters.
#[derive(Debug, Clone)]
pub struct LadderState {
    map: FaultMap,
    table: RemapTable,
    uncorrectable: HashSet<BlockAddr>,
    counters: FaultCounters,
}

impl LadderState {
    /// Builds the ladder from `cfg`'s fault configuration; `None` when
    /// the config carries none (the fault subsystem is absent).
    pub fn new(cfg: &GpuConfig) -> Option<Self> {
        let map = FaultMap::from_config(cfg)?;
        let spare = map.config().spare_blocks;
        Some(Self {
            map,
            table: RemapTable::new(spare),
            uncorrectable: HashSet::new(),
            counters: FaultCounters::default(),
        })
    }

    /// The fault map the ladder consults.
    pub fn fault_map(&self) -> &FaultMap {
        &self.map
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Finishes the functional pass into the [`FaultPlan`] the timing
    /// side replays (remap table + final counters).
    pub fn into_plan(self) -> FaultPlan {
        FaultPlan::new(self.table, self.counters)
    }

    /// Resolves one block for the current snapshot and updates the
    /// counters. `analysis` is the block's cached per-snapshot analysis;
    /// only [`Scheme::Uncompressed`] resolves without one.
    ///
    /// Remap and uncorrectable verdicts are sticky: a permanent fault
    /// stays remapped (or lost) for the rest of the run even if a later
    /// snapshot's content would fit, and is counted exactly once.
    /// Escalations, by contrast, are per-(snapshot, block) decisions —
    /// each snapshot a block must store a deeper truncation counts.
    pub fn resolve(
        &mut self,
        scheme: &Scheme,
        addr: BlockAddr,
        approximable: bool,
        analysis: Option<&BlockAnalysis>,
    ) -> LadderVerdict {
        let Some(budget_bits) = self.map.block_budget_bits(addr) else {
            return LadderVerdict::Intact;
        };
        if self.table.slot_of(addr).is_some() {
            return LadderVerdict::Remapped;
        }
        if self.uncorrectable.contains(&addr) {
            return LadderVerdict::Uncorrectable;
        }
        match (scheme, analysis) {
            (Scheme::Uncompressed, _) => {
                // Verbatim blocks only survive a faulty row that kept
                // full block capacity.
                if (BLOCK_BYTES as u32) * 8 <= budget_bits {
                    return LadderVerdict::Intact;
                }
            }
            (Scheme::E2mc(_), Some(a)) => {
                if a.e2mc_size_bits() <= budget_bits {
                    return LadderVerdict::Intact;
                }
            }
            (Scheme::Slc(s), Some(a)) => {
                if approximable {
                    match s.fit_within_with(a, budget_bits) {
                        FitOutcome::Natural { .. } => return LadderVerdict::Intact,
                        FitOutcome::Lossless { .. } => return LadderVerdict::SqueezeLossless,
                        FitOutcome::Degraded { selection, .. } => {
                            self.counters.fault_escalations += 1;
                            return LadderVerdict::Degrade { selection, budget_bits };
                        }
                        FitOutcome::Unstorable => {}
                    }
                } else if a.e2mc_size_bits() <= budget_bits {
                    // Exact regions may only store losslessly.
                    return LadderVerdict::Intact;
                }
            }
            _ => unreachable!("compressed schemes resolve with an analysis"),
        }
        match self.table.assign(addr) {
            Some(_) => {
                self.counters.remaps += 1;
                self.counters.spare_occupancy_peak = u64::from(self.table.used());
                LadderVerdict::Remapped
            }
            None => {
                self.uncorrectable.insert(addr);
                self.counters.uncorrectable_blocks += 1;
                LadderVerdict::Uncorrectable
            }
        }
    }

    /// The fault-aware replacement for the harness' fused
    /// stage-and-record pass: resolves every block of `mem` against the
    /// ladder, stages approximable regions (with the degraded or
    /// squeezed stored form where the ladder demands one), and folds the
    /// actually-stored burst counts into `acc`.
    ///
    /// With a zero-density map every verdict is [`LadderVerdict::Intact`]
    /// and the pass reduces to [`Scheme::stage_analyzed`] +
    /// [`BurstsAccumulator::record`] — byte-identical staging, identical
    /// cells.
    pub fn stage_and_record(
        &mut self,
        scheme: &Scheme,
        mem: &mut GpuMemory,
        acc: &mut BurstsAccumulator,
    ) {
        let mag = acc.mag();
        match scheme {
            Scheme::Uncompressed => {
                // No staging and no burst recording (the uncompressed
                // map stays empty, as in the fault-free pipeline); the
                // walk only feeds the ladder counters.
                let addrs: Vec<BlockAddr> = mem.blocks_with_addr().map(|(_, a, _)| a).collect();
                for addr in addrs {
                    self.resolve(scheme, addr, false, None);
                }
            }
            Scheme::E2mc(e2mc) => {
                // Lossless staging is the identity: analyse, resolve and
                // record in one read-only walk. Whatever the verdict,
                // the stored form is the block's lossless stream — in
                // its own row, a spare slot, or (uncorrectable, model
                // intact) unchanged — so the recorded bursts are the
                // plain scheme decision.
                for (region, addr, block) in mem.blocks_with_addr() {
                    let analysis = e2mc.analyze(block);
                    self.resolve(scheme, addr, region.safe_to_approx, Some(&analysis));
                    acc.record_one(
                        addr,
                        scheme.bursts_for_analysis(&analysis, mag, region.safe_to_approx),
                    );
                }
            }
            Scheme::Slc(slc) => self.stage_and_record_slc(scheme, slc, mem, acc),
        }
    }

    /// The SLC arm of [`stage_and_record`](Self::stage_and_record):
    /// pass A resolves every block in address-walk order on the
    /// *pre-stage* content (the analyses the budget decisions need
    /// anyway), pass B stages approximable regions under the queued
    /// verdicts. Staging visits approx blocks in the same relative
    /// order the walk saw them, so verdicts merge back by position —
    /// the same positional contract [`Scheme::stage_analyzed`] relies
    /// on.
    fn stage_and_record_slc(
        &mut self,
        scheme: &Scheme,
        slc: &SlcCompressor,
        mem: &mut GpuMemory,
        acc: &mut BurstsAccumulator,
    ) {
        let mag = acc.mag();
        let e2mc = slc.e2mc().clone(); // Arc bump, not a table copy
        let mut queue: Vec<(BlockAddr, LadderVerdict, BlockAnalysis)> = Vec::new();
        for (region, addr, block) in mem.blocks_with_addr() {
            let analysis = e2mc.analyze(block);
            let verdict = self.resolve(scheme, addr, region.safe_to_approx, Some(&analysis));
            if region.safe_to_approx {
                queue.push((addr, verdict, analysis));
            } else {
                // Exact regions are never staged; their stored form is
                // the lossless stream wherever the ladder put it.
                acc.record_one(addr, scheme.bursts_for_analysis(&analysis, mag, false));
            }
        }
        let mut pending = queue.into_iter();
        mem.stage_approx_regions(|_region, block| {
            let (addr, verdict, analysis) =
                pending.next().expect("one resolved verdict per approx block");
            match verdict {
                LadderVerdict::Degrade { selection, budget_bits } => {
                    let c = slc.compress_degraded(block, &analysis, selection, budget_bits);
                    let out = slc.decompress(&c);
                    acc.record_one(addr, c.bursts());
                    out
                }
                LadderVerdict::SqueezeLossless => {
                    let c = slc.compress_lossless_with(block, &analysis);
                    let out = slc.decompress(&c);
                    debug_assert_eq!(&out[..], &block[..], "lossless squeeze must round-trip");
                    acc.record_one(addr, c.bursts());
                    out
                }
                LadderVerdict::Intact | LadderVerdict::Remapped | LadderVerdict::Uncorrectable => {
                    // The fault-free staging path, verbatim from
                    // `Scheme::stage_analyzed`: exact modes round-trip
                    // bit-for-bit so the pre-stage analysis is the
                    // post-stage one; lossy reconstructions are
                    // re-analysed for the burst decision.
                    let c = slc.compress_with(block, &analysis);
                    let out = slc.decompress(&c);
                    let post = if c.is_lossy() { e2mc.analyze(&out) } else { analysis };
                    acc.record_one(addr, slc.stored_bursts_with(&post));
                    out
                }
            }
        });
        debug_assert!(pending.next().is_none(), "resolved verdicts left over");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SnapshotAnalysis;
    use slc_compress::e2mc::{E2mc, E2mcConfig};
    use slc_compress::Mag;
    use slc_core::slc::SlcVariant;
    use slc_sim::{DevicePtr, FaultConfig, FaultPattern};

    fn trained() -> E2mc {
        let bytes: Vec<u8> =
            (0..1u32 << 14).flat_map(|i| ((i % 512) as f32).to_le_bytes()).collect();
        E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
    }

    fn filled_memory() -> GpuMemory {
        let mut m = GpuMemory::new();
        let a = m.malloc("approx", 2048, true, 16);
        let e = m.malloc("exact", 1024, false, 0);
        let vals: Vec<f32> = (0..512).map(|i| (i % 512) as f32).collect();
        m.write_f32(a, &vals);
        m.write_f32(e, &vals[..256]);
        m
    }

    fn faulty_config(density: f64, budget_bytes: u32, spare: u32) -> GpuConfig {
        GpuConfig::default().with_faults(
            FaultConfig::new(FaultPattern::RandomRows, density, 7)
                .with_budget_bytes(budget_bytes)
                .with_spare_blocks(spare),
        )
    }

    #[test]
    fn zero_density_matches_the_fault_free_pipeline() {
        let e = trained();
        for scheme in [
            Scheme::E2mc(e.clone()),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt),
            Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcSimp),
        ] {
            let cfg = faulty_config(0.0, 64, 8);
            let mut ladder = LadderState::new(&cfg).unwrap();
            let mut faulty_mem = filled_memory();
            let mut faulty_acc = BurstsAccumulator::new(Mag::GDDR5);
            ladder.stage_and_record(&scheme, &mut faulty_mem, &mut faulty_acc);
            let mut plain_mem = filled_memory();
            let mut plain_acc = BurstsAccumulator::new(Mag::GDDR5);
            let snap = scheme.stage_analyzed(&mut plain_mem).unwrap();
            plain_acc.record(&scheme, &snap);
            assert_eq!(
                faulty_mem.read_f32(DevicePtr(0), 512),
                plain_mem.read_f32(DevicePtr(0), 512),
                "zero-density staging must be byte-identical"
            );
            assert_eq!(faulty_acc.into_map(), plain_acc.into_map());
            assert_eq!(*ladder.counters(), FaultCounters::default());
        }
    }

    #[test]
    fn hopeless_budget_splits_remaps_and_uncorrectable() {
        // A 2-byte budget is below any header, so every faulty block is
        // unstorable: the first `spare` blocks (in walk order) remap,
        // the rest are uncorrectable — and a second snapshot re-counts
        // none of them.
        let e = trained();
        let scheme = Scheme::E2mc(e);
        let cfg = faulty_config(1.0, 2, 3);
        let mut ladder = LadderState::new(&cfg).unwrap();
        let mut mem = filled_memory();
        let total = mem.blocks_with_addr().count() as u64;
        let mut acc = BurstsAccumulator::new(Mag::GDDR5);
        ladder.stage_and_record(&scheme, &mut mem, &mut acc);
        let c = *ladder.counters();
        assert_eq!(c.remaps, 3);
        assert_eq!(c.spare_occupancy_peak, 3);
        assert_eq!(c.uncorrectable_blocks, total - 3);
        assert_eq!(c.fault_escalations, 0, "lossless schemes never escalate");
        ladder.stage_and_record(&scheme, &mut mem, &mut acc);
        assert_eq!(*ladder.counters(), c, "remap/uncorrectable counts are per distinct block");
        // The functional model keeps data intact and records the plain
        // lossless bursts throughout.
        let plain = {
            let mut a = BurstsAccumulator::new(Mag::GDDR5);
            let snap = SnapshotAnalysis::capture(scheme.e2mc().unwrap(), &mem);
            a.record(&scheme, &snap);
            a.record(&scheme, &snap);
            a.into_map()
        };
        assert_eq!(acc.into_map(), plain);
    }

    #[test]
    fn escalations_reconcile_with_fit_verdicts_per_snapshot() {
        let e = trained();
        let slc = slc_core::slc::SlcCompressor::new(
            e.clone(),
            slc_core::slc::SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt),
        );
        let scheme = Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        // Find a budget that actually forces deeper truncations on this
        // memory (scan downward; with a generous spare pool nothing is
        // uncorrectable, so escalations are the only moving count).
        let mem0 = filled_memory();
        let snap = SnapshotAnalysis::capture(&e, &mem0);
        let mut chosen = None;
        for budget_bytes in (8..64).rev() {
            let degraded = snap
                .entries()
                .iter()
                .filter(|b| b.approximable)
                .filter(|b| {
                    matches!(
                        slc.fit_within_with(&b.analysis, budget_bytes * 8),
                        FitOutcome::Degraded { .. }
                    )
                })
                .count() as u64;
            if degraded > 0 {
                chosen = Some((budget_bytes, degraded));
                break;
            }
        }
        let (budget_bytes, expected) = chosen.expect("some budget must force a degradation");
        let cfg = faulty_config(1.0, budget_bytes, 4096);
        let mut ladder = LadderState::new(&cfg).unwrap();
        let mut mem = filled_memory();
        let mut acc = BurstsAccumulator::new(Mag::GDDR5);
        ladder.stage_and_record(&scheme, &mut mem, &mut acc);
        assert_eq!(ladder.counters().fault_escalations, expected);
        assert_eq!(ladder.counters().uncorrectable_blocks, 0, "pool is oversized");
        // Escalations are per (snapshot, block): staging the (now
        // mutated) memory again may degrade again, and each decision
        // counts — the count can only grow.
        ladder.stage_and_record(&scheme, &mut mem, &mut acc);
        assert!(ladder.counters().fault_escalations >= expected);
    }

    #[test]
    fn degraded_blocks_record_the_stream_they_actually_store() {
        // Under a tight budget the recorded bursts must reflect the
        // degraded stream (<= budget), not the fault-free decision.
        let e = trained();
        let scheme = Scheme::slc(e.clone(), Mag::GDDR5, 16, SlcVariant::TslcOpt);
        let budget_bytes = 32u32;
        let cfg = faulty_config(1.0, budget_bytes, 4096);
        let mut ladder = LadderState::new(&cfg).unwrap();
        let mut mem = filled_memory();
        let mut acc = BurstsAccumulator::new(Mag::GDDR5);
        ladder.stage_and_record(&scheme, &mut mem, &mut acc);
        assert_eq!(ladder.counters().uncorrectable_blocks, 0);
        let plan = ladder.into_plan();
        let map = acc.into_map();
        let max_bursts = Mag::GDDR5.bursts_for_bytes(budget_bytes, BLOCK_BYTES as u32).max(1);
        for (region, addr, _) in mem.blocks_with_addr() {
            // Remapped blocks live in a healthy spare row at full
            // capacity; everything else must fit the faulty row.
            if region.safe_to_approx && plan.slot_of(addr).is_none() {
                assert!(
                    slc_sim::mc::BurstsSource::bursts(&map, addr) <= max_bursts,
                    "block {addr} stored beyond the surviving capacity"
                );
            }
        }
    }
}

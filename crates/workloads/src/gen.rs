//! Seeded synthetic input generators.
//!
//! The paper's inputs (CUDA SDK / Rodinia / AxBench data sets) are
//! replaced with seeded synthetic equivalents that reproduce the
//! *compressibility profile* that matters to SLC: smooth images, clustered
//! floating-point magnitudes, and high-entropy option parameters (see
//! DESIGN.md's substitution table). Everything is deterministic in the
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a (workload, purpose) pair.
pub fn rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(stream))
}

/// Uniform floats in `[lo, hi)`.
pub fn uniform_vec(rng: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A smooth 2-D field: a few low-frequency sinusoids. Values span roughly
/// `[-amplitude, amplitude]` around `offset`.
pub fn smooth_image(
    rng: &mut StdRng,
    width: usize,
    height: usize,
    offset: f32,
    amplitude: f32,
) -> Vec<f32> {
    let waves: Vec<(f32, f32, f32, f32)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.5..3.0),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.2..1.0),
            )
        })
        .collect();
    let norm: f32 = waves.iter().map(|w| w.3).sum();
    let mut out = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let u = x as f32 / width as f32;
            let v = y as f32 / height as f32;
            let mut s = 0.0f32;
            for &(fx, fy, phase, w) in &waves {
                s += w * (std::f32::consts::TAU * (fx * u + fy * v) + phase).sin();
            }
            out.push(offset + amplitude * s / norm);
        }
    }
    out
}

/// A smooth image quantised to integral pixel values in `[0, levels)` —
/// the profile of decoded 8-bit image data promoted to `f32` (DCT's
/// input). Integral `f32` values zero out mantissa-low symbols, which is
/// what makes DCT traffic highly compressible.
pub fn quantized_image(rng: &mut StdRng, width: usize, height: usize, levels: u32) -> Vec<f32> {
    let half = levels as f32 / 2.0;
    smooth_image(rng, width, height, half, half * 0.95)
        .into_iter()
        .map(|p| p.clamp(0.0, (levels - 1) as f32).round())
        .collect()
}

/// A smooth field plus white noise of relative strength `noise`
/// (0 = perfectly smooth, 1 = noise as strong as the signal).
pub fn noisy_field(
    rng: &mut StdRng,
    n: usize,
    offset: f32,
    amplitude: f32,
    noise: f32,
) -> Vec<f32> {
    let width = (n as f64).sqrt().ceil() as usize;
    let height = n.div_ceil(width);
    let mut img = smooth_image(rng, width, height, offset, amplitude);
    img.truncate(n);
    for v in img.iter_mut() {
        *v += amplitude * noise * rng.gen_range(-1.0..1.0f32);
    }
    img
}

/// Quantises values to multiples of `step` in place.
///
/// Real-world inputs (sensor tracks, mesh vertices, decoded media) carry
/// limited precision; a power-of-two `step` zeroes the low mantissa bits
/// of `f32` values exactly, reproducing the symbol-level redundancy E2MC
/// exploits on real traffic.
///
/// # Panics
///
/// Panics unless `step` is positive and a power of two (including
/// negative powers like 2⁻⁹).
pub fn quantize(values: &mut [f32], step: f32) {
    assert!(step > 0.0 && step.log2().fract() == 0.0, "step must be a power of two, got {step}");
    for v in values.iter_mut() {
        *v = (*v / step).round() * step;
    }
}

/// Mixed-precision quantisation: each value snaps to the `coarse` grid,
/// except a `p_fine` fraction that keeps `fine`-grid precision.
///
/// Real data sets mix smooth, low-precision mass with high-precision
/// detail (track way-points vs interpolated fixes, flat image areas vs
/// edges). The fine fraction directly tunes the symbol entropy E2MC sees
/// — and therefore where compressed block sizes land relative to MAG
/// multiples.
///
/// # Panics
///
/// Panics unless both steps are powers of two and `p_fine ∈ [0, 1]`.
pub fn dither(values: &mut [f32], coarse: f32, fine: f32, p_fine: f64, rng: &mut StdRng) {
    assert!((0.0..=1.0).contains(&p_fine), "p_fine {p_fine} out of range");
    for v in values.iter_mut() {
        let step = if rng.gen_bool(p_fine) { fine } else { coarse };
        assert!(step > 0.0 && step.log2().fract() == 0.0, "step must be a power of two");
        *v = (*v / step).round() * step;
    }
}

/// Values with magnitudes clustered in one binade-ish band
/// `[scale, scale * spread)`, random signs — the profile of neural-net
/// weights.
pub fn clustered_weights(rng: &mut StdRng, n: usize, scale: f32, spread: f32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let m = rng.gen_range(scale..scale * spread);
            if rng.gen_bool(0.5) {
                m
            } else {
                -m
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_vec(&mut rng(7, 0), 100, 0.0, 1.0);
        let b = uniform_vec(&mut rng(7, 0), 100, 0.0, 1.0);
        assert_eq!(a, b);
        let c = uniform_vec(&mut rng(7, 1), 100, 0.0, 1.0);
        assert_ne!(a, c, "different streams diverge");
    }

    #[test]
    fn uniform_respects_bounds() {
        let v = uniform_vec(&mut rng(1, 0), 1000, 5.0, 30.0);
        assert!(v.iter().all(|&x| (5.0..30.0).contains(&x)));
    }

    #[test]
    fn smooth_image_is_smooth() {
        let img = smooth_image(&mut rng(2, 0), 64, 64, 100.0, 50.0);
        assert_eq!(img.len(), 64 * 64);
        // Neighbouring pixels within a row differ far less than the
        // amplitude (rows may wrap discontinuously).
        let mut max_step = 0.0f32;
        for row in img.chunks(64) {
            for w in row.windows(2) {
                max_step = max_step.max((w[1] - w[0]).abs());
            }
        }
        assert!(max_step < 25.0, "max step {max_step}");
    }

    #[test]
    fn quantize_zeroes_low_mantissa_bits() {
        let mut v = vec![13.3774f32, 62.9013, 8.0001];
        quantize(&mut v, 0.0625);
        for x in &v {
            let q = x / 0.0625;
            assert_eq!(q.fract(), 0.0, "{x} not on the grid");
        }
        // Low half of the f32 pattern is sparse after quantisation.
        let low = u32::from_le_bytes(v[0].to_le_bytes()) & 0xffff;
        assert_eq!(low.count_ones(), 0, "quantised value has noisy low half: {low:#x}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn quantize_rejects_non_binary_steps() {
        quantize(&mut [1.0], 0.1);
    }

    #[test]
    fn quantized_image_is_integral_and_bounded() {
        let img = quantized_image(&mut rng(3, 0), 32, 32, 256);
        assert!(img.iter().all(|&p| p.fract() == 0.0 && (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn noisy_field_has_requested_length() {
        let v = noisy_field(&mut rng(4, 0), 1000, 10.0, 2.0, 0.1);
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn clustered_weights_cluster() {
        let v = clustered_weights(&mut rng(5, 0), 1000, 0.01, 4.0);
        assert!(v.iter().all(|&w| {
            let m = w.abs();
            (0.01..0.04).contains(&m)
        }));
        assert!(v.iter().any(|&w| w < 0.0) && v.iter().any(|&w| w > 0.0));
    }
}

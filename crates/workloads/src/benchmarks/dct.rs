//! DCT — 8×8 blocked discrete cosine transform (CUDA SDK `dct8x8`).
//!
//! Image output, image-diff metric, 2 approximable regions: the source
//! image and the coefficient output (Table III: #AR = 2). The input is a
//! quantised (integral-valued) image, which is what makes DCT the most
//! compressible workload of the suite — and, in the paper, the biggest
//! SLC winner at MAG 32 B.

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// DCT block edge.
const B: usize = 8;

/// The 8×8 DCT benchmark.
#[derive(Debug, Clone)]
pub struct Dct {
    n: usize,
}

impl Dct {
    /// Creates the benchmark at `scale` (paper: 1024 × 1024 image).
    pub fn new(scale: Scale) -> Self {
        Self { n: scale.pick(64, 512, 1024) }
    }

    fn ptrs(&self) -> (DevicePtr, DevicePtr) {
        let bytes = (self.n * self.n * 4) as u64;
        (DevicePtr(0), DevicePtr(bytes))
    }
}

/// DCT-II basis coefficient `c(k) * cos((2x+1) k pi / 16)`.
fn basis(k: usize, x: usize) -> f32 {
    let ck = if k == 0 { (1.0 / B as f32).sqrt() } else { (2.0 / B as f32).sqrt() };
    ck * ((2 * x + 1) as f32 * k as f32 * std::f32::consts::PI / (2.0 * B as f32)).cos()
}

/// Forward 8×8 DCT of one block (rows then columns).
fn dct8x8(block: &[f32; B * B]) -> [f32; B * B] {
    let mut tmp = [0.0f32; B * B];
    // Rows.
    for y in 0..B {
        for k in 0..B {
            let mut s = 0.0;
            for x in 0..B {
                s += block[y * B + x] * basis(k, x);
            }
            tmp[y * B + k] = s;
        }
    }
    // Columns.
    let mut out = [0.0f32; B * B];
    for k in 0..B {
        for x in 0..B {
            let mut s = 0.0;
            for y in 0..B {
                s += tmp[y * B + x] * basis(k, y);
            }
            out[k * B + x] = s;
        }
    }
    out
}

impl Workload for Dct {
    fn name(&self) -> &'static str {
        "DCT"
    }

    fn description(&self) -> &'static str {
        "Discrete cosine transform"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::ImageDiff
    }

    fn approx_regions(&self) -> usize {
        2
    }

    fn input_description(&self) -> String {
        format!("{}x{} img.", self.n, self.n)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let bytes = self.n * self.n * 4;
        let src = mem.malloc("src_image", bytes, true, 16);
        let _dst = mem.malloc("dct_coeffs", bytes, true, 16);
        // 6-bit grayscale source; a small fraction of pixels carries
        // interpolated sub-level detail (the dither must see the smooth
        // field *before* integer rounding to preserve that detail).
        let mut img = gen::smooth_image(&mut gen::rng(seed, 0), self.n, self.n, 32.0, 30.0);
        gen::dither(&mut img, 1.0, 1.0 / 256.0, 0.04, &mut gen::rng(seed, 8));
        mem.write_f32(src, &img);
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let (src, dst) = self.ptrs();
        stage(mem);
        let img = mem.read_f32(src, self.n * self.n);
        let mut out = vec![0.0f32; self.n * self.n];
        for by in (0..self.n).step_by(B) {
            for bx in (0..self.n).step_by(B) {
                let mut block = [0.0f32; B * B];
                for y in 0..B {
                    for x in 0..B {
                        block[y * B + x] = img[(by + y) * self.n + bx + x];
                    }
                }
                let coeffs = dct8x8(&block);
                for y in 0..B {
                    for x in 0..B {
                        out[(by + y) * self.n + bx + x] = coeffs[y * B + x];
                    }
                }
            }
        }
        mem.write_f32(dst, &out);
        stage(mem);
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let (_, dst) = self.ptrs();
        read_region(mem, dst, self.n * self.n)
    }

    fn trace(&self, sms: usize) -> Trace {
        let (src, dst) = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        // One thread block handles a band of 8 image rows: contiguous
        // loads and stores, moderate per-block math.
        zip_sweep(
            &mut b,
            self.n * self.n,
            8 * self.n,
            &[ArraySpec::new(src, 4)],
            &[ArraySpec::new(dst, 4)],
            3,
        );
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [9.0f32; 64];
        let out = dct8x8(&block);
        assert!((out[0] - 9.0 * 8.0).abs() < 1e-3, "DC = 8 * mean, got {}", out[0]);
        for (i, &c) in out.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Parseval: orthonormal transform preserves the L2 norm.
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f32 * 0.7).sin() * 50.0;
        }
        let out = dct8x8(&block);
        let e_in: f32 = block.iter().map(|v| v * v).sum();
        let e_out: f32 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }

    #[test]
    fn pipeline_produces_finite_coefficients() {
        let d = Dct::new(Scale::Tiny);
        let mut mem = d.build(11);
        let mut noop = |_: &mut GpuMemory| {};
        d.execute(&mut mem, &mut noop);
        let out = d.output(&mem);
        assert_eq!(out.len(), 64 * 64);
        assert!(out.iter().all(|v| v.is_finite()));
        // DC coefficients dominate a natural image.
        let dc_mag: f32 = out.iter().step_by(8).map(|v| v.abs()).sum();
        let total: f32 = out.iter().map(|v| v.abs()).sum();
        assert!(dc_mag / total > 0.2);
    }

    #[test]
    fn trace_covers_both_images() {
        let d = Dct::new(Scale::Tiny);
        let t = d.trace(16);
        let blocks: std::collections::HashSet<u64> = t.touched_blocks().collect();
        // 64*64*4 = 16 KB per image = 128 blocks each.
        assert_eq!(blocks.len(), 256);
    }
}

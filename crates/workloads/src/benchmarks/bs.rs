//! BS — Black-Scholes European options pricing (CUDA SDK).
//!
//! Numeric output, MRE metric, 4 approximable regions: the three input
//! parameter arrays and the call-price output; the put-price output is
//! left exact (Table III: #AR = 4).

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// The Black-Scholes benchmark.
#[derive(Debug, Clone)]
pub struct Bs {
    options: usize,
}

impl Bs {
    /// Creates the benchmark at `scale` (paper: 4 M options).
    pub fn new(scale: Scale) -> Self {
        Self { options: scale.pick(8 << 10, 256 << 10, 4 << 20) }
    }

    fn ptrs(&self) -> [DevicePtr; 5] {
        // Allocation order is fixed: price, strike, years, call, put.
        let n = self.options as u64 * 4;
        [DevicePtr(0), DevicePtr(n), DevicePtr(2 * n), DevicePtr(3 * n), DevicePtr(4 * n)]
    }
}

/// Cumulative normal distribution (Abramowitz & Stegun 7.1.26 polynomial),
/// matching the CUDA SDK kernel.
fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    const RSQRT2PI: f32 = 0.398_942_3;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let c = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - c
    } else {
        c
    }
}

/// One option: returns (call, put).
fn black_scholes(s: f32, x: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let cnd_d1 = cnd(d1);
    let cnd_d2 = cnd(d2);
    let exp_rt = (-r * t).exp();
    let call = s * cnd_d1 - x * exp_rt * cnd_d2;
    let put = x * exp_rt * (1.0 - cnd_d2) - s * (1.0 - cnd_d1);
    (call, put)
}

const RISKFREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;

impl Workload for Bs {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn description(&self) -> &'static str {
        "Options pricing"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::Mre
    }

    fn approx_regions(&self) -> usize {
        4
    }

    fn input_description(&self) -> String {
        format!("{} options", self.options)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let n = self.options;
        let bytes = n * 4;
        let price = mem.malloc("stock_price", bytes, true, 16);
        let strike = mem.malloc("option_strike", bytes, true, 16);
        let years = mem.malloc("option_years", bytes, true, 16);
        let _call = mem.malloc("call_result", bytes, true, 16);
        let _put = mem.malloc("put_result", bytes, false, 0);
        // CUDA SDK input ranges. Prices and strikes sit on exchange
        // grids (1/32 and 1/4 ticks); expiries are continuous, so the
        // years array and both outputs stay essentially incompressible.
        let mut s = gen::uniform_vec(&mut gen::rng(seed, 0), n, 5.0, 30.0);
        gen::dither(&mut s, 1.0 / 32.0, 1.0 / 65536.0, 0.8, &mut gen::rng(seed, 8));
        mem.write_f32(price, &s);
        let mut x = gen::uniform_vec(&mut gen::rng(seed, 1), n, 1.0, 100.0);
        gen::dither(&mut x, 0.25, 1.0 / 65536.0, 0.8, &mut gen::rng(seed, 9));
        mem.write_f32(strike, &x);
        mem.write_f32(years, &gen::uniform_vec(&mut gen::rng(seed, 2), n, 0.25, 10.0));
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let [price, strike, years, call, put] = self.ptrs();
        stage(mem); // inputs land in DRAM compressed
        let s = mem.read_f32(price, self.options);
        let x = mem.read_f32(strike, self.options);
        let t = mem.read_f32(years, self.options);
        let mut calls = vec![0.0f32; self.options];
        let mut puts = vec![0.0f32; self.options];
        for i in 0..self.options {
            let (c, p) = black_scholes(s[i], x[i], t[i], RISKFREE, VOLATILITY);
            calls[i] = c;
            puts[i] = p;
        }
        mem.write_f32(call, &calls);
        mem.write_f32(put, &puts);
        stage(mem); // outputs written back through the compressor
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let [.., call, put] = self.ptrs();
        let mut out = read_region(mem, call, self.options);
        out.extend(read_region(mem, put, self.options));
        out
    }

    fn trace(&self, sms: usize) -> Trace {
        let [price, strike, years, call, put] = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        let inputs =
            [ArraySpec::new(price, 4), ArraySpec::new(strike, 4), ArraySpec::new(years, 4)];
        let outputs = [ArraySpec::new(call, 4), ArraySpec::new(put, 4)];
        // exp/ln/sqrt-heavy kernel: a few cycles of math per block.
        zip_sweep(&mut b, self.options, 512, &inputs, &outputs, 4);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_are_sane() {
        let (call, put) = black_scholes(20.0, 20.0, 1.0, RISKFREE, VOLATILITY);
        assert!(call > 0.0 && put > 0.0);
        // Put-call parity: C - P = S - X e^{-rT}.
        let parity = call - put - (20.0 - 20.0 * (-RISKFREE * 1.0f32).exp());
        assert!(parity.abs() < 1e-3, "parity violation {parity}");
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic() {
        let (call, _) = black_scholes(30.0, 1.0, 0.25, RISKFREE, VOLATILITY);
        assert!((call - (30.0 - 1.0 * (-RISKFREE * 0.25f32).exp())).abs() < 1e-2);
    }

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-6);
        assert!(cnd(5.0) > 0.999);
        assert!(cnd(-5.0) < 0.001);
        assert!((cnd(1.0) + cnd(-1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pipeline_runs_and_outputs() {
        let bs = Bs::new(Scale::Tiny);
        let mut mem = bs.build(3);
        let mut noop = |_: &mut GpuMemory| {};
        bs.execute(&mut mem, &mut noop);
        let out = bs.output(&mem);
        assert_eq!(out.len(), 2 * 8192);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn trace_covers_all_arrays() {
        let bs = Bs::new(Scale::Tiny);
        let t = bs.trace(16);
        let blocks: std::collections::HashSet<u64> = t.touched_blocks().collect();
        // 5 arrays x 8192 f32 = 5 x 256 blocks.
        assert_eq!(blocks.len(), 5 * 256);
    }

    #[test]
    fn staging_callback_fires_twice() {
        let bs = Bs::new(Scale::Tiny);
        let mut mem = bs.build(3);
        let mut count = 0usize;
        let mut counter = |_: &mut GpuMemory| count += 1;
        bs.execute(&mut mem, &mut counter);
        assert_eq!(count, 2);
    }
}

//! TP — matrix transpose (CUDA SDK).
//!
//! Signal-processing style output, NRMSE metric, 2 approximable regions:
//! the input and output matrices (Table III: #AR = 2). The trace exhibits
//! transpose's signature strided stores.

use super::read_region;
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{BlockAddr, DevicePtr, GpuMemory, Trace};

/// The matrix-transpose benchmark (n × n, f32).
#[derive(Debug, Clone)]
pub struct Tp {
    n: usize,
}

/// CUDA SDK transpose tile: 32 × 32.
const TILE: usize = 32;

impl Tp {
    /// Creates the benchmark at `scale` (paper: 1024 × 1024).
    pub fn new(scale: Scale) -> Self {
        Self { n: scale.pick(128, 512, 1024) }
    }

    fn ptrs(&self) -> (DevicePtr, DevicePtr) {
        let bytes = (self.n * self.n * 4) as u64;
        (DevicePtr(0), DevicePtr(bytes))
    }
}

impl Workload for Tp {
    fn name(&self) -> &'static str {
        "TP"
    }

    fn description(&self) -> &'static str {
        "Matrix transpose"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::Nrmse
    }

    fn approx_regions(&self) -> usize {
        2
    }

    fn input_description(&self) -> String {
        format!("{}x{}", self.n, self.n)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let bytes = self.n * self.n * 4;
        let input = mem.malloc("idata", bytes, true, 16);
        let _output = mem.malloc("odata", bytes, true, 16);
        // A smooth field with mild noise at sensor precision (1/4 step):
        // moderately compressible.
        let mut img = gen::noisy_field(&mut gen::rng(seed, 0), self.n * self.n, 60.0, 40.0, 0.05);
        gen::dither(&mut img, 0.25, 1.0 / 16384.0, 0.3, &mut gen::rng(seed, 8));
        mem.write_f32(input, &img);
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let (input, output) = self.ptrs();
        stage(mem);
        let src = mem.read_f32(input, self.n * self.n);
        let mut dst = vec![0.0f32; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                dst[j * self.n + i] = src[i * self.n + j];
            }
        }
        mem.write_f32(output, &dst);
        stage(mem);
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let (_, output) = self.ptrs();
        read_region(mem, output, self.n * self.n)
    }

    fn trace(&self, sms: usize) -> Trace {
        let (input, output) = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        let row_blocks = (self.n * 4 / 128) as u64; // blocks per matrix row
        let in_first = input.0 >> 7;
        let out_first = output.0 >> 7;
        // 32x32 tiles: each tile loads 32 row-fragments of the input
        // (TILE * 4 = 128 B = exactly one block per row) and stores 32
        // strided fragments of the output.
        for ti in (0..self.n).step_by(TILE) {
            for tj in (0..self.n).step_by(TILE) {
                let loads: Vec<BlockAddr> = (0..TILE)
                    .map(|r| in_first + (ti + r) as u64 * row_blocks + (tj / TILE) as u64)
                    .collect();
                let stores: Vec<BlockAddr> = (0..TILE)
                    .map(|r| out_first + (tj + r) as u64 * row_blocks + (ti / TILE) as u64)
                    .collect();
                b.tile(&loads, TILE as u32, &stores);
            }
        }
        b.barrier();
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_correct() {
        let tp = Tp::new(Scale::Tiny);
        let mut mem = tp.build(1);
        let (input, _) = tp.ptrs();
        let src = mem.read_f32(input, 128 * 128);
        let mut noop = |_: &mut GpuMemory| {};
        tp.execute(&mut mem, &mut noop);
        let out = tp.output(&mem);
        for i in [0usize, 5, 100] {
            for j in [0usize, 17, 99] {
                assert_eq!(out[j * 128 + i], src[i * 128 + j]);
            }
        }
    }

    #[test]
    fn trace_touches_both_matrices_fully() {
        let tp = Tp::new(Scale::Tiny);
        let t = tp.trace(16);
        let blocks: std::collections::HashSet<u64> = t.touched_blocks().collect();
        // 128*128*4 = 64 KB per matrix = 512 blocks each.
        assert_eq!(blocks.len(), 1024);
    }

    #[test]
    fn stores_are_strided() {
        let tp = Tp::new(Scale::Tiny);
        let t = tp.trace(16);
        // Find two consecutive stores in one stream: they must be a full
        // row apart (strided), not adjacent.
        let row_blocks = (128 * 4 / 128) as u64;
        let mut seen_stride = false;
        for sm in 0..t.sms() {
            let stores: Vec<u64> = t
                .stream(sm)
                .iter()
                .filter_map(|o| if let slc_sim::Op::Store(b) = o { Some(*b) } else { None })
                .collect();
            for w in stores.windows(2) {
                if w[1] > w[0] && w[1] - w[0] == row_blocks {
                    seen_stride = true;
                }
            }
        }
        assert!(seen_stride, "transpose stores should stride by a row");
    }

    #[test]
    fn transpose_twice_is_identity() {
        let tp = Tp::new(Scale::Tiny);
        let mut mem = tp.build(2);
        let (input, output) = tp.ptrs();
        let src = mem.read_f32(input, 128 * 128);
        let mut noop = |_: &mut GpuMemory| {};
        tp.execute(&mut mem, &mut noop);
        // Feed the output back as input.
        let once = mem.read_f32(output, 128 * 128);
        mem.write_f32(input, &once);
        tp.execute(&mut mem, &mut noop);
        assert_eq!(mem.read_f32(output, 128 * 128), src);
    }
}

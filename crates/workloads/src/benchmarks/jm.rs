//! JM — triangle-triangle intersection (AxBench `jmeint`).
//!
//! Boolean output, miss-rate metric, 6 approximable regions: the six
//! vertex-coordinate arrays (Table III: #AR = 6); the decision output is
//! exact. The kernel is Möller's interval-based triangle-triangle overlap
//! test; a flipped decision under approximation is exactly the "boolean
//! that may flip" the paper blames for JM's comparatively high error.

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use rand::Rng;
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// The triangle-intersection benchmark.
#[derive(Debug, Clone)]
pub struct Jm {
    pairs: usize,
}

impl Jm {
    /// Creates the benchmark at `scale` (paper: 400 K triangle pairs).
    pub fn new(scale: Scale) -> Self {
        Self { pairs: scale.pick(4 << 10, 128 << 10, 400_000) }
    }

    /// Six coordinate arrays (3 f32 each per pair) + the output flags.
    fn ptrs(&self) -> ([DevicePtr; 6], DevicePtr) {
        let n = self.pairs as u64 * 12;
        let coords = [
            DevicePtr(0),
            DevicePtr(n),
            DevicePtr(2 * n),
            DevicePtr(3 * n),
            DevicePtr(4 * n),
            DevicePtr(5 * n),
        ];
        (coords, DevicePtr(6 * n))
    }
}

type V3 = [f32; 3];

fn sub(a: V3, b: V3) -> V3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: V3, b: V3) -> V3 {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

fn dot(a: V3, b: V3) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Interval of triangle (vp, dv) along the intersection line, where the
/// vertex `lone` lies alone on its side of the other triangle's plane.
fn interval(vp: V3, dv: V3, lone: usize) -> (f32, f32) {
    let (a, b, c) = match lone {
        0 => (0, 1, 2),
        1 => (1, 0, 2),
        _ => (2, 0, 1),
    };
    let t0 = vp[a] + (vp[b] - vp[a]) * dv[a] / (dv[a] - dv[b]);
    let t1 = vp[a] + (vp[c] - vp[a]) * dv[a] / (dv[a] - dv[c]);
    (t0.min(t1), t0.max(t1))
}

/// Index of the vertex alone on its side (signs must straddle).
fn lone_vertex(dv: V3) -> usize {
    let s = [dv[0] >= 0.0, dv[1] >= 0.0, dv[2] >= 0.0];
    if s[0] == s[1] {
        2
    } else if s[0] == s[2] {
        1
    } else {
        0
    }
}

/// 2-D point-in-triangle (for the rare coplanar case).
fn point_in_tri_2d(p: [f32; 2], a: [f32; 2], b: [f32; 2], c: [f32; 2]) -> bool {
    let sign = |p1: [f32; 2], p2: [f32; 2], p3: [f32; 2]| {
        (p1[0] - p3[0]) * (p2[1] - p3[1]) - (p2[0] - p3[0]) * (p1[1] - p3[1])
    };
    let d1 = sign(p, a, b);
    let d2 = sign(p, b, c);
    let d3 = sign(p, c, a);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

fn segments_intersect_2d(p1: [f32; 2], p2: [f32; 2], q1: [f32; 2], q2: [f32; 2]) -> bool {
    let orient = |a: [f32; 2], b: [f32; 2], c: [f32; 2]| {
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    };
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    (d1 * d2 < 0.0) && (d3 * d4 < 0.0)
}

fn coplanar_tri_tri(n: V3, t1: [V3; 3], t2: [V3; 3]) -> bool {
    // Project onto the dominant-axis plane.
    let ax = n[0].abs();
    let ay = n[1].abs();
    let az = n[2].abs();
    let proj = |v: V3| -> [f32; 2] {
        if ax >= ay && ax >= az {
            [v[1], v[2]]
        } else if ay >= ax && ay >= az {
            [v[0], v[2]]
        } else {
            [v[0], v[1]]
        }
    };
    let a: Vec<[f32; 2]> = t1.iter().map(|&v| proj(v)).collect();
    let b: Vec<[f32; 2]> = t2.iter().map(|&v| proj(v)).collect();
    for i in 0..3 {
        for j in 0..3 {
            if segments_intersect_2d(a[i], a[(i + 1) % 3], b[j], b[(j + 1) % 3]) {
                return true;
            }
        }
    }
    point_in_tri_2d(a[0], b[0], b[1], b[2]) || point_in_tri_2d(b[0], a[0], a[1], a[2])
}

/// Möller's triangle-triangle overlap test.
pub fn tri_tri_intersect(t1: [V3; 3], t2: [V3; 3]) -> bool {
    const EPS: f32 = 1e-7;
    // Plane of t2.
    let n2 = cross(sub(t2[1], t2[0]), sub(t2[2], t2[0]));
    let d2 = -dot(n2, t2[0]);
    let mut dv = [dot(n2, t1[0]) + d2, dot(n2, t1[1]) + d2, dot(n2, t1[2]) + d2];
    for d in dv.iter_mut() {
        if d.abs() < EPS {
            *d = 0.0;
        }
    }
    if (dv[0] > 0.0 && dv[1] > 0.0 && dv[2] > 0.0) || (dv[0] < 0.0 && dv[1] < 0.0 && dv[2] < 0.0) {
        return false;
    }
    // Plane of t1.
    let n1 = cross(sub(t1[1], t1[0]), sub(t1[2], t1[0]));
    let d1 = -dot(n1, t1[0]);
    let mut du = [dot(n1, t2[0]) + d1, dot(n1, t2[1]) + d1, dot(n1, t2[2]) + d1];
    for d in du.iter_mut() {
        if d.abs() < EPS {
            *d = 0.0;
        }
    }
    if (du[0] > 0.0 && du[1] > 0.0 && du[2] > 0.0) || (du[0] < 0.0 && du[1] < 0.0 && du[2] < 0.0) {
        return false;
    }
    if dv == [0.0; 3] {
        return coplanar_tri_tri(n2, t1, t2);
    }
    // Intersection line direction; project on its dominant axis.
    let dir = cross(n1, n2);
    let axis = {
        let m = [dir[0].abs(), dir[1].abs(), dir[2].abs()];
        if m[0] >= m[1] && m[0] >= m[2] {
            0
        } else if m[1] >= m[2] {
            1
        } else {
            2
        }
    };
    let vp = [t1[0][axis], t1[1][axis], t1[2][axis]];
    let up = [t2[0][axis], t2[1][axis], t2[2][axis]];
    let (a0, a1) = interval(vp, dv, lone_vertex(dv));
    let (b0, b1) = interval(up, du, lone_vertex(du));
    a1 >= b0 && b1 >= a0
}

impl Workload for Jm {
    fn name(&self) -> &'static str {
        "JM"
    }

    fn description(&self) -> &'static str {
        "Intersection of triangles"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::MissRate
    }

    fn approx_regions(&self) -> usize {
        6
    }

    fn input_description(&self) -> String {
        format!("{} tri. pairs", self.pairs)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let coord_bytes = self.pairs * 12;
        let labels = ["a_v0", "a_v1", "a_v2", "b_v0", "b_v1", "b_v2"];
        let mut ptrs = Vec::new();
        for label in labels {
            ptrs.push(mem.malloc(label, coord_bytes, true, 16));
        }
        let flags = mem.malloc("intersects", self.pairs * 4, false, 0);
        let _ = flags;
        // Triangle pairs placed near each other so roughly a third
        // intersect: coordinates in a narrow magnitude band (clustered
        // exponents, varying mantissas).
        let mut rng = gen::rng(seed, 0);
        let mut arrays: Vec<Vec<f32>> =
            (0..6).map(|_| Vec::with_capacity(self.pairs * 3)).collect();
        for _ in 0..self.pairs {
            let base: V3 =
                [rng.gen_range(0.25..1.0), rng.gen_range(0.25..1.0), rng.gen_range(0.25..1.0)];
            let shift: V3 = [
                base[0] + rng.gen_range(-0.12f32..0.12),
                base[1] + rng.gen_range(-0.12f32..0.12),
                base[2] + rng.gen_range(-0.12f32..0.12),
            ];
            for (slot, array) in arrays.iter_mut().enumerate() {
                let center = if slot < 3 { base } else { shift };
                for &c in &center {
                    array.push(c + rng.gen_range(-0.15f32..0.15));
                }
            }
        }
        let mut qrng = gen::rng(seed, 7);
        for (ptr, data) in ptrs.iter().zip(&mut arrays) {
            // Mesh vertices come from model files with mixed precision:
            // most on a coarse grid, a fraction carrying full detail.
            gen::dither(data, 1.0 / 512.0, 1.0 / 131072.0, 0.35, &mut qrng);
            mem.write_f32(*ptr, data);
        }
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let (coords, flags) = self.ptrs();
        stage(mem);
        let arrays: Vec<Vec<f32>> =
            coords.iter().map(|&p| mem.read_f32(p, self.pairs * 3)).collect();
        let mut out = vec![0.0f32; self.pairs];
        for i in 0..self.pairs {
            let v =
                |a: usize| -> V3 { [arrays[a][3 * i], arrays[a][3 * i + 1], arrays[a][3 * i + 2]] };
            let t1 = [v(0), v(1), v(2)];
            let t2 = [v(3), v(4), v(5)];
            out[i] = if tri_tri_intersect(t1, t2) { 1.0 } else { 0.0 };
        }
        mem.write_f32(flags, &out);
        stage(mem);
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let (_, flags) = self.ptrs();
        read_region(mem, flags, self.pairs)
    }

    fn trace(&self, sms: usize) -> Trace {
        let (coords, flags) = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        let inputs: Vec<ArraySpec> = coords.iter().map(|&p| ArraySpec::new(p, 12)).collect();
        let outputs = [ArraySpec::new(flags, 4)];
        zip_sweep(&mut b, self.pairs, 128, &inputs, &outputs, 4);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_UNIT: [V3; 3] = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];

    #[test]
    fn piercing_triangles_intersect() {
        // A triangle crossing the unit triangle's plane through its interior.
        let t2 = [[0.2, 0.2, -0.5], [0.3, 0.2, 0.5], [0.25, 0.3, 0.5]];
        assert!(tri_tri_intersect(T_UNIT, t2));
        assert!(tri_tri_intersect(t2, T_UNIT), "test is symmetric");
    }

    #[test]
    fn distant_triangles_do_not_intersect() {
        let far = [[10.0, 10.0, 10.0], [11.0, 10.0, 10.0], [10.0, 11.0, 10.0]];
        assert!(!tri_tri_intersect(T_UNIT, far));
    }

    #[test]
    fn parallel_offset_triangles_do_not_intersect() {
        let above = [[0.0, 0.0, 1.0], [1.0, 0.0, 1.0], [0.0, 1.0, 1.0]];
        assert!(!tri_tri_intersect(T_UNIT, above));
    }

    #[test]
    fn crossing_plane_but_outside_does_not_intersect() {
        // Straddles the plane but far from the unit triangle in x.
        let t2 = [[5.0, 0.2, -0.5], [5.2, 0.2, 0.5], [5.1, 0.4, 0.5]];
        assert!(!tri_tri_intersect(T_UNIT, t2));
    }

    #[test]
    fn coplanar_overlapping_triangles_intersect() {
        let t2 = [[0.1, 0.1, 0.0], [0.9, 0.1, 0.0], [0.1, 0.9, 0.0]];
        assert!(tri_tri_intersect(T_UNIT, t2));
    }

    #[test]
    fn coplanar_disjoint_triangles_do_not_intersect() {
        let t2 = [[5.0, 5.0, 0.0], [6.0, 5.0, 0.0], [5.0, 6.0, 0.0]];
        assert!(!tri_tri_intersect(T_UNIT, t2));
    }

    #[test]
    fn pipeline_produces_mixed_decisions() {
        let jm = Jm::new(Scale::Tiny);
        let mut mem = jm.build(1);
        let mut noop = |_: &mut GpuMemory| {};
        jm.execute(&mut mem, &mut noop);
        let out = jm.output(&mem);
        let hits = out.iter().filter(|&&v| v > 0.5).count();
        let rate = hits as f64 / out.len() as f64;
        assert!((0.05..0.95).contains(&rate), "intersection rate {rate} should be non-degenerate");
    }

    #[test]
    fn six_coordinate_regions_are_approximable() {
        let jm = Jm::new(Scale::Tiny);
        let mem = jm.build(1);
        assert_eq!(mem.approx_regions(), 6);
        // The flags output is exact.
        let (_, flags) = jm.ptrs();
        assert!(!mem.is_approximable(flags.0));
    }
}

//! FWT — fast Walsh-Hadamard transform (CUDA SDK).
//!
//! Signal-processing output, NRMSE metric, 2 approximable regions: the
//! ping-pong data buffers (Table III: #AR = 2). The transform runs as
//! four batched kernel launches, each applying a group of butterfly
//! stages, with a DRAM round-trip between launches — so approximation
//! error injected early propagates through later stages, as on real
//! hardware.

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// Number of batched kernel launches (grouped butterfly stages).
const PASSES: usize = 4;

/// The fast Walsh transform benchmark.
#[derive(Debug, Clone)]
pub struct Fwt {
    n: usize,
}

impl Fwt {
    /// Creates the benchmark at `scale` (paper: 8 M elements).
    pub fn new(scale: Scale) -> Self {
        Self { n: scale.pick(1 << 12, 1 << 18, 1 << 23) }
    }

    fn ptrs(&self) -> (DevicePtr, DevicePtr) {
        let bytes = (self.n * 4) as u64;
        (DevicePtr(0), DevicePtr(bytes))
    }

    fn stages(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// Stage ranges of each pass: stages split as evenly as possible.
    fn pass_ranges(&self) -> Vec<(usize, usize)> {
        let total = self.stages();
        let per = total.div_ceil(PASSES);
        (0..PASSES).map(|p| (p * per, ((p + 1) * per).min(total))).filter(|(a, b)| a < b).collect()
    }
}

/// Applies Walsh-Hadamard butterfly stages `[from, to)` in place.
fn wht_stages(data: &mut [f32], from: usize, to: usize) {
    let n = data.len();
    for s in from..to {
        let h = 1usize << s;
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let a = data[j];
                let b = data[j + h];
                data[j] = a + b;
                data[j + h] = a - b;
            }
            i += 2 * h;
        }
    }
}

impl Workload for Fwt {
    fn name(&self) -> &'static str {
        "FWT"
    }

    fn description(&self) -> &'static str {
        "Fast Walsh transform"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::Nrmse
    }

    fn approx_regions(&self) -> usize {
        2
    }

    fn input_description(&self) -> String {
        format!("{} elements", self.n)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let bytes = self.n * 4;
        let data = mem.malloc("data", bytes, true, 16);
        let _pong = mem.malloc("pong", bytes, true, 16);
        // Audio-like fixed-point samples (1/16 steps). Butterfly sums stay
        // on the same grid, so intermediate passes keep a bounded symbol
        // alphabet and compressibility degrades gracefully rather than
        // collapsing when approximation perturbs a value.
        let mut signal = gen::noisy_field(&mut gen::rng(seed, 0), self.n, 0.0, 96.0, 0.25);
        gen::dither(&mut signal, 0.5, 1.0 / 64.0, 0.25, &mut gen::rng(seed, 8));
        mem.write_f32(data, &signal);
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let (data, pong) = self.ptrs();
        stage(mem);
        // Ping-pong between the buffers, staging after every launch.
        let mut src = data;
        let mut dst = pong;
        for (from, to) in self.pass_ranges() {
            let mut buf = mem.read_f32(src, self.n);
            wht_stages(&mut buf, from, to);
            mem.write_f32(dst, &buf);
            stage(mem);
            std::mem::swap(&mut src, &mut dst);
        }
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        // After an even number of passes the result sits back in `data`;
        // `pass_ranges` always yields PASSES = 4 passes for our sizes.
        let (data, pong) = self.ptrs();
        let final_ptr = if self.pass_ranges().len().is_multiple_of(2) { data } else { pong };
        read_region(mem, final_ptr, self.n)
    }

    fn trace(&self, sms: usize) -> Trace {
        let (data, pong) = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        let mut src = data;
        let mut dst = pong;
        for _ in self.pass_ranges() {
            zip_sweep(
                &mut b,
                self.n,
                1024,
                &[ArraySpec::new(src, 4)],
                &[ArraySpec::new(dst, 4)],
                2,
            );
            std::mem::swap(&mut src, &mut dst);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wht_of_impulse_is_constant() {
        let mut data = vec![0.0f32; 8];
        data[0] = 1.0;
        wht_stages(&mut data, 0, 3);
        assert_eq!(data, vec![1.0; 8]);
    }

    #[test]
    fn wht_is_involutive_up_to_n() {
        let mut data = vec![3.0, -1.0, 2.0, 0.5, 7.0, -2.0, 1.5, 4.0];
        let orig = data.clone();
        wht_stages(&mut data, 0, 3);
        wht_stages(&mut data, 0, 3);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a / 8.0 - b).abs() < 1e-5);
        }
    }

    #[test]
    fn pipeline_matches_single_shot_transform() {
        let f = Fwt::new(Scale::Tiny);
        let mut mem = f.build(7);
        let (data, _) = f.ptrs();
        let mut expect = mem.read_f32(data, 1 << 12);
        wht_stages(&mut expect, 0, 12);
        let mut noop = |_: &mut GpuMemory| {};
        f.execute(&mut mem, &mut noop);
        assert_eq!(f.output(&mem), expect);
    }

    #[test]
    fn trace_sweeps_each_pass() {
        let f = Fwt::new(Scale::Tiny);
        let t = f.trace(16);
        // 4 passes x (128 load-blocks + 128 store-blocks) for 4096 f32.
        let loads = (0..t.sms())
            .flat_map(|s| t.stream(s))
            .filter(|o| matches!(o, slc_sim::Op::Load(_)))
            .count();
        assert_eq!(loads, 4 * 128);
    }

    #[test]
    fn staging_fires_once_per_pass_plus_upload() {
        let f = Fwt::new(Scale::Tiny);
        let mut mem = f.build(7);
        let mut count = 0usize;
        let mut counter = |_: &mut GpuMemory| count += 1;
        f.execute(&mut mem, &mut counter);
        assert_eq!(count, 1 + PASSES);
    }
}

//! The nine Table III benchmarks.

pub mod bp;
pub mod bs;
pub mod dct;
pub mod fwt;
pub mod jm;
pub mod nn;
pub mod srad;
pub mod tp;

use slc_sim::trace::TraceBuilder;
use slc_sim::{BlockAddr, DevicePtr};

/// An array participating in a sweep: device pointer + bytes per element.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArraySpec {
    pub ptr: DevicePtr,
    pub elem_bytes: usize,
}

impl ArraySpec {
    pub(crate) fn new(ptr: DevicePtr, elem_bytes: usize) -> Self {
        Self { ptr, elem_bytes }
    }

    /// Blocks covering elements `[start, end)`.
    fn blocks(&self, start: usize, end: usize) -> impl Iterator<Item = BlockAddr> {
        let lo = (self.ptr.0 + (start * self.elem_bytes) as u64) >> 7;
        let hi = (self.ptr.0 + (end * self.elem_bytes) as u64).div_ceil(128);
        lo..hi
    }
}

/// Emits the trace of an element-parallel kernel that streams `n` elements
/// through every input and output array: per tile of `tile_elems`
/// elements, the covering blocks of each input are loaded, `compute_per_
/// block` cycles are charged per loaded block, and the covering blocks of
/// each output are stored. This is the coalesced access pattern of a
/// grid-stride elementwise CUDA kernel.
pub(crate) fn zip_sweep(
    b: &mut TraceBuilder,
    n: usize,
    tile_elems: usize,
    inputs: &[ArraySpec],
    outputs: &[ArraySpec],
    compute_per_block: u32,
) {
    assert!(tile_elems > 0);
    let mut start = 0usize;
    while start < n {
        let end = (start + tile_elems).min(n);
        let loads: Vec<BlockAddr> = inputs.iter().flat_map(|a| a.blocks(start, end)).collect();
        let stores: Vec<BlockAddr> = outputs.iter().flat_map(|a| a.blocks(start, end)).collect();
        let compute = compute_per_block * loads.len().max(1) as u32;
        b.tile(&loads, compute, &stores);
        start = end;
    }
}

/// Reads back a whole `f32` region (output extraction helper).
pub(crate) fn read_region(mem: &slc_sim::GpuMemory, ptr: DevicePtr, len: usize) -> Vec<f32> {
    mem.read_f32(ptr, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_sim::trace::Op;

    #[test]
    fn array_spec_block_ranges() {
        let a = ArraySpec::new(DevicePtr(256), 4);
        // Elements 0..32 = bytes 256..384 = blocks 2..3.
        let blocks: Vec<u64> = a.blocks(0, 32).collect();
        assert_eq!(blocks, vec![2]);
        // Elements 0..33 spill into block 3.
        let blocks: Vec<u64> = a.blocks(0, 33).collect();
        assert_eq!(blocks, vec![2, 3]);
    }

    #[test]
    fn zip_sweep_touches_all_blocks_once_per_pass() {
        let mut b = TraceBuilder::new(2);
        let input = ArraySpec::new(DevicePtr(0), 4);
        let output = ArraySpec::new(DevicePtr(128 * 100), 4);
        zip_sweep(&mut b, 1024, 32, &[input], &[output], 2);
        let t = b.build();
        let loads: Vec<u64> = (0..t.sms())
            .flat_map(|s| t.stream(s).iter())
            .filter_map(|o| if let Op::Load(b) = o { Some(*b) } else { None })
            .collect();
        // 1024 f32 = 4 KB = 32 blocks, tiles of 32 elems = 1 block each.
        assert_eq!(loads.len(), 32);
        let stores = (0..t.sms())
            .flat_map(|s| t.stream(s).iter())
            .filter(|o| matches!(o, Op::Store(_)))
            .count();
        assert_eq!(stores, 32);
    }
}

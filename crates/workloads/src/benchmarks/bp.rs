//! BP — single-hidden-layer perceptron training step (Rodinia `backprop`).
//!
//! Numeric output, MRE metric, 6 approximable regions: the input units,
//! both weight matrices and their momentum buffers, and the hidden
//! activations (Table III: #AR = 6). The dominant traffic is the
//! input-to-hidden weight matrix, streamed once in the forward pass and
//! twice (read + write) in the weight-update pass.

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// Learning rate (Rodinia's ETA).
const ETA: f32 = 0.3;
/// Momentum (Rodinia's MOMENTUM).
const MOMENTUM: f32 = 0.3;

/// The backprop benchmark.
#[derive(Debug, Clone)]
pub struct Bp {
    n_in: usize,
    n_hidden: usize,
}

impl Bp {
    /// Creates the benchmark at `scale` (paper: 64 K input units).
    pub fn new(scale: Scale) -> Self {
        let n_in = scale.pick(1 << 10, 16 << 10, 64 << 10);
        Self { n_in, n_hidden: 16 }
    }

    /// Allocation order: input, w1, w1_prev, hidden, w2, w2_prev.
    fn ptrs(&self) -> [DevicePtr; 6] {
        let pad = |bytes: usize| bytes.div_ceil(128) * 128;
        let in_b = pad(self.n_in * 4) as u64;
        let w1_b = pad(self.n_in * self.n_hidden * 4) as u64;
        let h_b = pad(self.n_hidden * 4) as u64;
        [
            DevicePtr(0),
            DevicePtr(in_b),
            DevicePtr(in_b + w1_b),
            DevicePtr(in_b + 2 * w1_b),
            DevicePtr(in_b + 2 * w1_b + h_b),
            DevicePtr(in_b + 2 * w1_b + 2 * h_b),
        ]
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Workload for Bp {
    fn name(&self) -> &'static str {
        "BP"
    }

    fn description(&self) -> &'static str {
        "Perceptron training"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::Mre
    }

    fn approx_regions(&self) -> usize {
        6
    }

    fn input_description(&self) -> String {
        format!("{} elements", self.n_in)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let input = mem.malloc("input_units", self.n_in * 4, true, 16);
        let w1 = mem.malloc("input_weights", self.n_in * self.n_hidden * 4, true, 16);
        let _w1p = mem.malloc("input_prev_weights", self.n_in * self.n_hidden * 4, true, 16);
        let _hid = mem.malloc("hidden_units", self.n_hidden * 4, true, 16);
        let w2 = mem.malloc("hidden_weights", self.n_hidden * 4, true, 16);
        let _w2p = mem.malloc("hidden_prev_weights", self.n_hidden * 4, true, 16);
        // Quantised inputs and initial weights (fixed-point-trained nets
        // and normalised features have limited precision).
        let mut x = gen::uniform_vec(&mut gen::rng(seed, 0), self.n_in, 0.0, 1.0);
        gen::quantize(&mut x, 1.0 / 256.0);
        mem.write_f32(input, &x);
        // Trained weight matrices carry structure: magnitudes vary
        // smoothly and signs flip in runs, so neighbouring weights are
        // value-similar (what TSLC-PRED relies on).
        let nw = self.n_in * self.n_hidden;
        let magnitude = gen::noisy_field(&mut gen::rng(seed, 1), nw, 0.024, 0.008, 0.1);
        let sign_field = gen::noisy_field(&mut gen::rng(seed, 3), nw, 0.0, 1.0, 0.05);
        let mut weights1: Vec<f32> = magnitude
            .iter()
            .zip(&sign_field)
            .map(|(&m, &s)| if s >= 0.0 { m.abs() } else { -m.abs() })
            .collect();
        gen::dither(&mut weights1, 1.0 / 2048.0, 1.0 / 65536.0, 0.05, &mut gen::rng(seed, 8));
        mem.write_f32(w1, &weights1);
        mem.write_f32(
            w2,
            &gen::clustered_weights(&mut gen::rng(seed, 2), self.n_hidden, 0.01, 8.0),
        );
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let [input, w1, w1p, hid, w2, w2p] = self.ptrs();
        let (n, h) = (self.n_in, self.n_hidden);
        stage(mem);
        // Kernel 1: layer forward (input -> hidden).
        let x = mem.read_f32(input, n);
        let weights1 = mem.read_f32(w1, n * h);
        let mut hidden = vec![0.0f32; h];
        for j in 0..h {
            let mut s = 0.0f32;
            for i in 0..n {
                s += x[i] * weights1[i * h + j];
            }
            hidden[j] = sigmoid(s / n as f32);
        }
        mem.write_f32(hid, &hidden);
        stage(mem);
        // Kernel 2 (small): output, deltas.
        let hidden = mem.read_f32(hid, h);
        let weights2 = mem.read_f32(w2, h);
        let out = sigmoid(hidden.iter().zip(&weights2).map(|(a, b)| a * b).sum::<f32>());
        let target = 2.5f32; // strong training signal: updates exceed the weight grid
        let delta_out = out * (1.0 - out) * (target - out);
        let mut delta_h = vec![0.0f32; h];
        for j in 0..h {
            delta_h[j] = hidden[j] * (1.0 - hidden[j]) * weights2[j] * delta_out;
        }
        // Kernel 3: adjust weights with momentum.
        let x = mem.read_f32(input, n);
        let mut weights1 = mem.read_f32(w1, n * h);
        let mut prev1 = mem.read_f32(w1p, n * h);
        for (i, &xi) in x.iter().enumerate().take(n) {
            for (j, &dh) in delta_h.iter().enumerate().take(h) {
                let idx = i * h + j;
                let dw = ETA * dh * xi + MOMENTUM * prev1[idx];
                weights1[idx] += dw;
                prev1[idx] = dw;
            }
        }
        // Fixed-point weight storage: updates snap back to the weight
        // grid, as in quantised training (keeps DRAM-resident weights on
        // the limited alphabet real deployments exhibit).
        gen::quantize(&mut weights1, 1.0 / 2048.0);
        gen::quantize(&mut prev1, 1.0 / 2048.0);
        mem.write_f32(w1, &weights1);
        mem.write_f32(w1p, &prev1);
        let mut weights2 = mem.read_f32(w2, h);
        let mut prev2 = mem.read_f32(w2p, h);
        for j in 0..h {
            let dw = ETA * delta_out * hidden[j] + MOMENTUM * prev2[j];
            weights2[j] += dw;
            prev2[j] = dw;
        }
        mem.write_f32(w2, &weights2);
        mem.write_f32(w2p, &prev2);
        stage(mem);
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let [_, w1, .., w2, _] = self.ptrs();
        let mut out = read_region(mem, w1, self.n_in * self.n_hidden);
        out.extend(read_region(mem, w2, self.n_hidden));
        out
    }

    fn trace(&self, sms: usize) -> Trace {
        let [input, w1, w1p, hid, ..] = self.ptrs();
        let (n, h) = (self.n_in, self.n_hidden);
        let mut b = TraceBuilder::new(sms);
        // Kernel 1: stream w1 (+ the input vector), store hidden partials.
        zip_sweep(&mut b, n * h, 2048, &[ArraySpec::new(w1, 4)], &[], 8);
        zip_sweep(&mut b, n, 1024, &[ArraySpec::new(input, 4)], &[ArraySpec::new(hid, 4)], 1);
        b.barrier();
        // Kernel 3: read-modify-write w1 and its momentum buffer (the
        // input vector stays resident in cache).
        zip_sweep(
            &mut b,
            n * h,
            2048,
            &[ArraySpec::new(w1, 4), ArraySpec::new(w1p, 4)],
            &[ArraySpec::new(w1, 4), ArraySpec::new(w1p, 4)],
            8,
        );
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_bounded_and_centred() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }

    #[test]
    fn training_step_changes_weights() {
        let bp = Bp::new(Scale::Tiny);
        let mut mem = bp.build(1);
        let before = bp.output(&mem);
        let mut noop = |_: &mut GpuMemory| {};
        bp.execute(&mut mem, &mut noop);
        let after = bp.output(&mem);
        assert_eq!(before.len(), after.len());
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(changed > before.len() / 20, "only {changed} weights changed");
        assert!(after.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn hidden_units_are_activations() {
        let bp = Bp::new(Scale::Tiny);
        let mut mem = bp.build(2);
        let mut noop = |_: &mut GpuMemory| {};
        bp.execute(&mut mem, &mut noop);
        let hid = bp.ptrs()[3];
        let hidden = mem.read_f32(hid, 16);
        assert!(hidden.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn trace_streams_the_weight_matrix_three_times() {
        let bp = Bp::new(Scale::Tiny);
        let t = bp.trace(16);
        let w1_first = bp.ptrs()[1].0 >> 7;
        let w1_blocks = (1024 * 16 * 4 / 128) as u64;
        let w1_loads = (0..t.sms())
            .flat_map(|s| t.stream(s))
            .filter(|o| {
                matches!(o, slc_sim::Op::Load(b) if (w1_first..w1_first + w1_blocks).contains(b))
            })
            .count() as u64;
        // Forward pass once + update pass once (the RMW load).
        assert_eq!(w1_loads, 2 * w1_blocks);
    }

    #[test]
    fn staging_fires_three_times() {
        let bp = Bp::new(Scale::Tiny);
        let mut mem = bp.build(1);
        let mut count = 0usize;
        let mut counter = |_: &mut GpuMemory| count += 1;
        bp.execute(&mut mem, &mut counter);
        assert_eq!(count, 3);
    }
}

//! SRAD — speckle-reducing anisotropic diffusion (Rodinia `srad` v1/v2).
//!
//! Image output, image-diff metric. Version 1 uses separate buffers for
//! the diffused image and the reduction partials (Table III: #AR = 8);
//! version 2 fuses the update in place (#AR = 6). Both run ITERATIONS
//! diffusion steps of two kernels each, with DRAM round-trips between
//! kernels — approximation errors feed back through the iteration.

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// Diffusion iterations (Rodinia default is 100; two suffice to exercise
/// the error-feedback path at tractable cost).
const ITERATIONS: usize = 2;

/// Diffusion strength λ.
const LAMBDA: f32 = 0.5;

/// The SRAD benchmark (both versions).
#[derive(Debug, Clone)]
pub struct Srad {
    n: usize,
    version: u8,
}

impl Srad {
    /// Rodinia `srad_v1` (paper: 1024×1024 image, #AR = 8).
    pub fn v1(scale: Scale) -> Self {
        Self { n: scale.pick(64, 256, 1024), version: 1 }
    }

    /// Rodinia `srad_v2` (paper: 1024×1024 image, #AR = 6).
    pub fn v2(scale: Scale) -> Self {
        Self { n: scale.pick(64, 256, 1024), version: 2 }
    }

    fn pixels(&self) -> usize {
        self.n * self.n
    }

    /// v1 order: J, c, dN, dS, dW, dE, J2, sums.
    /// v2 order: J, c, dN, dS, dW, dE.
    fn ptrs(&self) -> Vec<DevicePtr> {
        let img = (self.pixels() * 4).div_ceil(128) as u64 * 128;
        let count = if self.version == 1 { 8 } else { 6 };
        (0..count).map(|i| DevicePtr(i as u64 * img)).collect()
    }
}

/// One gradient/coefficient pass: fills dN/dS/dW/dE and c.
#[allow(clippy::too_many_arguments)]
fn srad_kernel1(
    n: usize,
    j: &[f32],
    q0sqr: f32,
    dn: &mut [f32],
    ds: &mut [f32],
    dw: &mut [f32],
    de: &mut [f32],
    c: &mut [f32],
) {
    for row in 0..n {
        for col in 0..n {
            let idx = row * n + col;
            // Guard: J >= 1 on exact data; approximation can zero it.
            let jc = j[idx].max(1e-6);
            let north = j[row.saturating_sub(1) * n + col];
            let south = j[(row + 1).min(n - 1) * n + col];
            let west = j[row * n + col.saturating_sub(1)];
            let east = j[row * n + (col + 1).min(n - 1)];
            dn[idx] = north - jc;
            ds[idx] = south - jc;
            dw[idx] = west - jc;
            de[idx] = east - jc;
            let g2 =
                (dn[idx] * dn[idx] + ds[idx] * ds[idx] + dw[idx] * dw[idx] + de[idx] * de[idx])
                    / (jc * jc);
            let l = (dn[idx] + ds[idx] + dw[idx] + de[idx]) / jc;
            let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
            let den = (1.0 + 0.25 * l).powi(2);
            let qsqr = num / den;
            let denom = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr));
            c[idx] = (1.0 / (1.0 + denom)).clamp(0.0, 1.0);
        }
    }
}

/// One diffusion update pass: out = J + λ/4 · div(c ∇J).
#[allow(clippy::too_many_arguments)]
fn srad_kernel2(
    n: usize,
    j: &[f32],
    dn: &[f32],
    ds: &[f32],
    dw: &[f32],
    de: &[f32],
    c: &[f32],
    out: &mut [f32],
) {
    for row in 0..n {
        for col in 0..n {
            let idx = row * n + col;
            let cn = c[idx];
            let cs = c[(row + 1).min(n - 1) * n + col];
            let cw = c[idx];
            let ce = c[row * n + (col + 1).min(n - 1)];
            let d = cn * dn[idx] + cs * ds[idx] + cw * dw[idx] + ce * de[idx];
            out[idx] = j[idx] + 0.25 * LAMBDA * d;
        }
    }
}

fn q0sqr_of(j: &[f32]) -> f32 {
    let nf = j.len() as f32;
    let sum: f32 = j.iter().sum();
    let sum2: f32 = j.iter().map(|v| v * v).sum();
    let mean = sum / nf;
    let var = (sum2 / nf - mean * mean).max(0.0);
    var / (mean * mean)
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        if self.version == 1 {
            "SRAD1"
        } else {
            "SRAD2"
        }
    }

    fn description(&self) -> &'static str {
        "Anisotropic diffusion"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::ImageDiff
    }

    fn approx_regions(&self) -> usize {
        if self.version == 1 {
            8
        } else {
            6
        }
    }

    fn input_description(&self) -> String {
        format!("{}x{} img.", self.n, self.n)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let bytes = self.pixels() * 4;
        let j = mem.malloc("J", bytes, true, 16);
        mem.malloc("c", bytes, true, 16);
        mem.malloc("dN", bytes, true, 16);
        mem.malloc("dS", bytes, true, 16);
        mem.malloc("dW", bytes, true, 16);
        mem.malloc("dE", bytes, true, 16);
        if self.version == 1 {
            mem.malloc("J2", bytes, true, 16);
            mem.malloc("sums", bytes, true, 16);
        }
        // Rodinia preprocesses the speckled image as J = exp(I/255); the
        // 8-bit source quantisation carries through at ~2^-9 resolution.
        let img = gen::quantized_image(&mut gen::rng(seed, 0), self.n, self.n, 256);
        let mut j_data: Vec<f32> = img.iter().map(|&p| (p / 255.0).exp()).collect();
        gen::dither(&mut j_data, 1.0 / 512.0, 1.0 / 131072.0, 0.2, &mut gen::rng(seed, 8));
        mem.write_f32(j, &j_data);
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let ptrs = self.ptrs();
        let n = self.n;
        let px = self.pixels();
        stage(mem);
        // v1 ping-pongs J <-> J2; v2 updates J in place.
        let mut src = ptrs[0];
        let mut dst = if self.version == 1 { ptrs[6] } else { ptrs[0] };
        for _ in 0..ITERATIONS {
            let j = mem.read_f32(src, px);
            // Reduction for q0sqr. v1 materialises row partials in `sums`
            // (its 8th region); v2 reduces in registers/shared memory.
            if self.version == 1 {
                let mut sums = vec![0.0f32; px];
                for (row, chunk) in j.chunks(n).enumerate() {
                    sums[row] = chunk.iter().sum();
                }
                mem.write_f32(ptrs[7], &sums);
                stage(mem);
            }
            let q0 = q0sqr_of(&j);
            let mut dn = vec![0.0f32; px];
            let mut ds = vec![0.0f32; px];
            let mut dw = vec![0.0f32; px];
            let mut de = vec![0.0f32; px];
            let mut c = vec![0.0f32; px];
            srad_kernel1(n, &j, q0, &mut dn, &mut ds, &mut dw, &mut de, &mut c);
            mem.write_f32(ptrs[2], &dn);
            mem.write_f32(ptrs[3], &ds);
            mem.write_f32(ptrs[4], &dw);
            mem.write_f32(ptrs[5], &de);
            mem.write_f32(ptrs[1], &c);
            stage(mem);
            let j = mem.read_f32(src, px);
            let dn = mem.read_f32(ptrs[2], px);
            let ds = mem.read_f32(ptrs[3], px);
            let dw = mem.read_f32(ptrs[4], px);
            let de = mem.read_f32(ptrs[5], px);
            let c = mem.read_f32(ptrs[1], px);
            let mut out = vec![0.0f32; px];
            srad_kernel2(n, &j, &dn, &ds, &dw, &de, &c, &mut out);
            // The diffused image is stored at the source's 2^-9 display
            // precision each iteration (8-bit-derived medical imagery).
            gen::quantize(&mut out, 1.0 / 512.0);
            mem.write_f32(dst, &out);
            stage(mem);
            if self.version == 1 {
                std::mem::swap(&mut src, &mut dst);
            }
        }
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        // v1 with an even iteration count ends back in J (after the final
        // swap, `src` points at the last-written buffer = J2 for odd
        // iterations). ITERATIONS = 2: J -> J2 -> J ... the final write
        // lands in J when ITERATIONS is even.
        let ptrs = self.ptrs();
        let final_ptr = if self.version == 1 && ITERATIONS % 2 == 1 { ptrs[6] } else { ptrs[0] };
        read_region(mem, final_ptr, self.pixels())
    }

    fn trace(&self, sms: usize) -> Trace {
        let ptrs = self.ptrs();
        let px = self.pixels();
        let mut b = TraceBuilder::new(sms);
        let spec = |i: usize| ArraySpec::new(ptrs[i], 4);
        let mut src = 0usize;
        let mut dst = if self.version == 1 { 6 } else { 0 };
        for _ in 0..ITERATIONS {
            if self.version == 1 {
                // Reduction kernel: read J, store row partials.
                zip_sweep(&mut b, px, 2048, &[spec(src)], &[spec(7)], 1);
                b.barrier();
            }
            // Kernel 1: read J (stencil), store the four gradients and c.
            zip_sweep(
                &mut b,
                px,
                2048,
                &[spec(src)],
                &[spec(2), spec(3), spec(4), spec(5), spec(1)],
                4,
            );
            b.barrier();
            // Kernel 2: read J + gradients + c, store the updated image.
            zip_sweep(
                &mut b,
                px,
                2048,
                &[spec(src), spec(2), spec(3), spec(4), spec(5), spec(1)],
                &[spec(dst)],
                3,
            );
            b.barrier();
            if self.version == 1 {
                std::mem::swap(&mut src, &mut dst);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_smooths_the_image() {
        let s = Srad::v2(Scale::Tiny);
        let mut mem = s.build(3);
        let before = mem.read_f32(s.ptrs()[0], s.pixels());
        let mut noop = |_: &mut GpuMemory| {};
        s.execute(&mut mem, &mut noop);
        let after = s.output(&mem);
        let roughness = |img: &[f32]| -> f64 {
            img.windows(2).map(|w| f64::from((w[1] - w[0]).abs())).sum::<f64>()
        };
        assert!(
            roughness(&after) < roughness(&before),
            "diffusion must reduce total variation: {} vs {}",
            roughness(&after),
            roughness(&before)
        );
        assert!(after.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn v1_and_v2_agree_on_the_math() {
        // Same image, same iterations: the two versions differ in memory
        // organisation, not in the diffusion result.
        let s1 = Srad::v1(Scale::Tiny);
        let s2 = Srad::v2(Scale::Tiny);
        let mut m1 = s1.build(9);
        let mut m2 = s2.build(9);
        let mut noop = |_: &mut GpuMemory| {};
        s1.execute(&mut m1, &mut noop);
        s2.execute(&mut m2, &mut noop);
        let o1 = s1.output(&m1);
        let o2 = s2.output(&m2);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn q0sqr_of_constant_image_is_zero() {
        assert!(q0sqr_of(&[2.0; 64]).abs() < 1e-9);
    }

    #[test]
    fn coefficients_stay_in_unit_range() {
        let s = Srad::v2(Scale::Tiny);
        let mut mem = s.build(5);
        let mut noop = |_: &mut GpuMemory| {};
        s.execute(&mut mem, &mut noop);
        let c = mem.read_f32(s.ptrs()[1], s.pixels());
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn region_counts_differ_between_versions() {
        assert_eq!(Srad::v1(Scale::Tiny).build(1).approx_regions(), 8);
        assert_eq!(Srad::v2(Scale::Tiny).build(1).approx_regions(), 6);
    }

    #[test]
    fn traces_differ_in_volume() {
        let t1 = Srad::v1(Scale::Tiny).trace(16);
        let t2 = Srad::v2(Scale::Tiny).trace(16);
        assert!(t1.len() > t2.len(), "v1 moves more data (reduction + ping-pong)");
    }
}

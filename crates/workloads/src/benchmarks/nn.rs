//! NN — nearest neighbors over geographic records (Rodinia `nn`).
//!
//! Streams latitude/longitude records, computing the Euclidean distance of
//! each to a query point. Numeric output, MRE metric, 2 approximable
//! regions: the records and the distances (Table III: #AR = 2).

use super::{read_region, zip_sweep, ArraySpec};
use crate::gen;
use crate::metrics::ErrorMetric;
use crate::suite::{Scale, Workload};
use rand::Rng;
use slc_sim::trace::TraceBuilder;
use slc_sim::{DevicePtr, GpuMemory, Trace};

/// The nearest-neighbors benchmark.
#[derive(Debug, Clone)]
pub struct Nn {
    records: usize,
}

impl Nn {
    /// Creates the benchmark at `scale` (paper: 20 M records).
    pub fn new(scale: Scale) -> Self {
        Self { records: scale.pick(8 << 10, 512 << 10, 20 << 20) }
    }

    fn ptrs(&self) -> (DevicePtr, DevicePtr) {
        let records = DevicePtr(0);
        let distances = DevicePtr(self.records as u64 * 8);
        (records, distances)
    }

    fn query(&self, seed: u64) -> (f32, f32) {
        let mut r = gen::rng(seed, 9);
        (r.gen_range(0.0..64.0), r.gen_range(0.0..64.0))
    }
}

impl Workload for Nn {
    fn name(&self) -> &'static str {
        "NN"
    }

    fn description(&self) -> &'static str {
        "Nearest neighbors"
    }

    fn metric(&self) -> ErrorMetric {
        ErrorMetric::Mre
    }

    fn approx_regions(&self) -> usize {
        2
    }

    fn input_description(&self) -> String {
        format!("{} records", self.records)
    }

    fn build(&self, seed: u64) -> GpuMemory {
        let mut mem = GpuMemory::new();
        let records = mem.malloc("records", self.records * 8, true, 16);
        let _distances = mem.malloc("distances", self.records * 4, true, 16);
        // Hurricane tracks: consecutive records follow a storm, so
        // adjacent values are highly similar (the similarity TSLC-PRED
        // exploits). Way-points carry 1/16-degree file precision with a
        // fraction of interpolated full-precision fixes.
        let mut rng = gen::rng(seed, 0);
        let mut data = Vec::with_capacity(self.records * 2);
        let (mut lat, mut lng) = (rng.gen_range(16.0..48.0f32), rng.gen_range(16.0..48.0f32));
        for i in 0..self.records {
            if i % 4096 == 0 {
                // A new storm starts.
                lat = rng.gen_range(16.0..48.0);
                lng = rng.gen_range(16.0..48.0);
            }
            lat = (lat + rng.gen_range(-0.35..0.35f32)).clamp(8.0, 64.0);
            lng = (lng + rng.gen_range(-0.35..0.35f32)).clamp(8.0, 64.0);
            data.push(lat);
            data.push(lng);
        }
        gen::dither(&mut data, 0.0625, 1.0 / 65536.0, 0.4, &mut gen::rng(seed, 8));
        mem.write_f32(records, &data);
        mem
    }

    fn execute(&self, mem: &mut GpuMemory, stage: &mut dyn FnMut(&mut GpuMemory)) {
        let (records, distances) = self.ptrs();
        let (qlat, qlng) = self.query(0);
        stage(mem);
        let data = mem.read_f32(records, self.records * 2);
        let mut out = vec![0.0f32; self.records];
        for i in 0..self.records {
            let dlat = data[2 * i] - qlat;
            let dlng = data[2 * i + 1] - qlng;
            out[i] = (dlat * dlat + dlng * dlng).sqrt();
        }
        mem.write_f32(distances, &out);
        stage(mem);
    }

    fn output(&self, mem: &GpuMemory) -> Vec<f32> {
        let (_, distances) = self.ptrs();
        read_region(mem, distances, self.records)
    }

    fn trace(&self, sms: usize) -> Trace {
        let (records, distances) = self.ptrs();
        let mut b = TraceBuilder::new(sms);
        // Pure streaming with trivial math: the most bandwidth-bound
        // benchmark in the suite.
        zip_sweep(
            &mut b,
            self.records,
            1024,
            &[ArraySpec::new(records, 8)],
            &[ArraySpec::new(distances, 4)],
            1,
        );
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_euclidean() {
        let nn = Nn::new(Scale::Tiny);
        let mut mem = nn.build(1);
        let mut noop = |_: &mut GpuMemory| {};
        nn.execute(&mut mem, &mut noop);
        let out = nn.output(&mem);
        let (records, _) = nn.ptrs();
        let data = mem.read_f32(records, 4);
        let (qlat, qlng) = nn.query(0);
        let expect = ((data[0] - qlat).powi(2) + (data[1] - qlng).powi(2)).sqrt();
        assert!((out[0] - expect).abs() < 1e-5);
        assert!(out.iter().all(|d| d.is_finite() && *d >= 0.0));
    }

    #[test]
    fn trace_moves_records_and_distances() {
        let nn = Nn::new(Scale::Tiny);
        let t = nn.trace(16);
        let blocks: std::collections::HashSet<u64> = t.touched_blocks().collect();
        // records: 8192*8/128 = 512 blocks; distances: 256 blocks.
        assert_eq!(blocks.len(), 512 + 256);
    }

    #[test]
    fn deterministic_outputs() {
        let nn = Nn::new(Scale::Tiny);
        let mut m1 = nn.build(5);
        let mut m2 = nn.build(5);
        let mut noop = |_: &mut GpuMemory| {};
        nn.execute(&mut m1, &mut noop);
        nn.execute(&mut m2, &mut noop);
        assert_eq!(nn.output(&m1), nn.output(&m2));
    }
}

//! Decode hardening: seeded truncation and bit-flip smoke tests over
//! every block codec. Corrupt streams must fail loudly (a guarded panic
//! with a diagnostic) or decode to *some* full-size block — never index
//! out of bounds — and the [`Compressed`] boundary must reject payloads
//! that cannot hold their declared bit length.

use slc::slc_compress::bdi::Bdi;
use slc::slc_compress::bpc::Bpc;
use slc::slc_compress::cpack::Cpack;
use slc::slc_compress::e2mc::{E2mc, E2mcConfig};
use slc::slc_compress::fpc::Fpc;
use slc::slc_compress::hycomp::HyComp;
use slc::slc_compress::rans::Rans;
use slc::slc_compress::sc2::Sc2;
use slc::slc_compress::{BlockCompressor, Compressed, BLOCK_BYTES};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic corruption source (xorshift64*), so a failing flip is
/// reproducible from the test output alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn training_bytes() -> Vec<u8> {
    (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect()
}

/// All eight block codecs, statistical ones trained on the same sample.
fn codecs() -> Vec<Box<dyn BlockCompressor>> {
    let bytes = training_bytes();
    vec![
        Box::new(Bdi::new()),
        Box::new(Fpc::new()),
        Box::new(Cpack::new()),
        Box::new(Bpc::new()),
        Box::new(E2mc::train_on_bytes(&bytes, &E2mcConfig::default())),
        Box::new(Sc2::train_on_bytes(&bytes, slc::slc_compress::sc2::DEFAULT_TOP_K)),
        Box::new(HyComp::train_on_bytes(&bytes)),
        Box::new(Rans::new()),
    ]
}

/// Candidate contents with real variation (no all-zeros: a zero-padded
/// partial decode of a constant block could masquerade as a roundtrip).
fn candidate_blocks() -> Vec<[u8; BLOCK_BYTES]> {
    let mut float_ramp = [0u8; BLOCK_BYTES];
    for (i, c) in float_ramp.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(((i * 3) % 257) as f32).to_le_bytes());
    }
    let mut int_deltas = [0u8; BLOCK_BYTES];
    for (i, c) in int_deltas.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(0x1000_0000u32 + 3 * i as u32).to_le_bytes());
    }
    let mut repeats = [0u8; BLOCK_BYTES];
    for (i, c) in repeats.chunks_exact_mut(4).enumerate() {
        let w: u32 = if i % 2 == 0 { 0xdead_beef } else { 0x0000_00ff + i as u32 % 4 };
        c.copy_from_slice(&w.to_le_bytes());
    }
    vec![float_ramp, int_deltas, repeats]
}

/// The first candidate `codec` actually compresses (every codec fires on
/// at least one — pinned by `all_codecs_roundtrip_a_sample`).
fn compressible_block_for(codec: &dyn BlockCompressor) -> [u8; BLOCK_BYTES] {
    candidate_blocks()
        .into_iter()
        .find(|b| codec.compress(b).is_compressed())
        .unwrap_or_else(|| panic!("{}: no candidate block compresses", codec.name()))
}

#[test]
fn all_codecs_roundtrip_a_sample() {
    for codec in codecs() {
        let block = compressible_block_for(codec.as_ref());
        let c = codec.compress(&block);
        assert!(c.is_compressed());
        assert_eq!(codec.decompress(&c), block, "{}: lossless roundtrip", codec.name());
    }
}

#[test]
fn truncated_streams_never_decode_silently_to_the_original() {
    // Chopping the declared length in half must either trip a guarded
    // bounds check (the loud-failure path) or, where a codec's layout
    // happens to decode a prefix, produce a block that is *not* the
    // original — silence plus the original bytes would mean the length
    // field is ignored entirely.
    for codec in codecs() {
        let block = compressible_block_for(codec.as_ref());
        let c = codec.compress(&block);
        let truncated = Compressed::new(c.size_bits() / 2, c.payload().to_vec());
        let result = catch_unwind(AssertUnwindSafe(|| codec.decompress(&truncated)));
        match result {
            Err(_) => {} // guarded panic: the preferred loud failure
            Ok(out) => assert_ne!(
                out,
                block,
                "{}: half the stream silently decoded to the full block",
                codec.name()
            ),
        }
    }
}

#[test]
fn seeded_bit_flips_are_contained() {
    // 64 seeded single-bit flips per codec: every corrupted stream must
    // either panic behind a guard or decode to some full-size block.
    // Nothing may abort, loop forever, or index out of bounds (the
    // BitReader asserts are the backstop; this exercises them from
    // every codec's decode path).
    let mut rng = Rng(0x5eed_f417);
    for codec in codecs() {
        let block = compressible_block_for(codec.as_ref());
        let c = codec.compress(&block);
        let mut panics = 0u32;
        for _ in 0..64 {
            let mut bytes = c.payload().to_vec();
            let bit = (rng.next() as usize) % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            let corrupt = Compressed::new(c.size_bits(), bytes);
            if catch_unwind(AssertUnwindSafe(|| codec.decompress(&corrupt))).is_err() {
                panics += 1;
            }
        }
        // The uncorrupted stream must still decode after the barrage
        // (no interior state was poisoned by the caught panics).
        assert_eq!(codec.decompress(&c), block, "{}: codec state poisoned", codec.name());
        println!("{}: {panics}/64 flips tripped a guard", codec.name());
    }
}

#[test]
fn compressed_boundary_validates_the_stored_length() {
    // The declared bit length must fit the payload: a short payload is
    // rejected at construction, before any decoder can run off its end.
    assert!(catch_unwind(|| Compressed::new(65, vec![0u8; 8])).is_err());
    assert!(catch_unwind(|| Compressed::new(64, vec![0u8; 8])).is_ok());
    // And a stream truncated by dropping payload bytes (length kept) is
    // caught at the same boundary.
    let e = E2mc::train_on_bytes(&training_bytes(), &E2mcConfig::default());
    let c = e.compress(&candidate_blocks()[0]);
    let mut short = c.payload().to_vec();
    short.truncate(short.len() / 2);
    let bits = c.size_bits();
    assert!(
        catch_unwind(move || Compressed::new(bits, short)).is_err(),
        "dropped payload bytes must be rejected at the Compressed boundary"
    );
}

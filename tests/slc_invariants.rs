//! Cross-crate integration: SLC's paper-level invariants hold on real
//! workload data, end to end.

use slc::slc_compress::symbols::block_to_symbols;
use slc::slc_compress::{BlockCompressor, Mag};
use slc::slc_core::predict::PredictorKind;
use slc::slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant, StoredKind};
use slc::slc_workloads::{all_workloads, Harness, Scale};

fn harness() -> Harness {
    Harness::new(Scale::Tiny)
}

#[test]
fn slc_never_costs_more_bursts_than_e2mc() {
    let h = harness();
    for w in all_workloads(Scale::Tiny) {
        let a = h.prepare(w.as_ref());
        let slc =
            SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
        for (region, block) in a.exact_memory.all_blocks() {
            if !region.safe_to_approx {
                continue;
            }
            let slc_bursts = slc.stored_bursts(&block);
            let e2mc_bursts = Mag::GDDR5.bursts_for_bits(a.e2mc.size_bits(&block), 128);
            assert!(
                slc_bursts <= e2mc_bursts,
                "{}: SLC {} > E2MC {} bursts",
                w.name(),
                slc_bursts,
                e2mc_bursts
            );
        }
    }
}

#[test]
fn lossy_blocks_differ_only_in_approximated_symbols() {
    let h = harness();
    let mut lossy_seen = 0usize;
    for w in all_workloads(Scale::Tiny) {
        let a = h.prepare(w.as_ref());
        let slc =
            SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
        for (region, block) in a.exact_memory.all_blocks().step_by(7) {
            if !region.safe_to_approx {
                continue;
            }
            let enc = slc.compress(&block);
            let out = slc.decompress(&enc);
            match enc.kind() {
                StoredKind::Lossy { selection } => {
                    lossy_seen += 1;
                    let orig = block_to_symbols(&block);
                    let dec = block_to_symbols(&out);
                    for i in 0..64 {
                        let hole =
                            (selection.start..selection.start + selection.symbols).contains(&i);
                        if !hole {
                            assert_eq!(orig[i], dec[i], "{}: symbol {i} leaked", w.name());
                        }
                    }
                }
                _ => assert_eq!(out, block, "{}: lossless must be exact", w.name()),
            }
        }
    }
    assert!(lossy_seen > 50, "only {lossy_seen} lossy blocks across the suite");
}

#[test]
fn stored_size_respects_bit_budget() {
    let h = harness();
    for w in all_workloads(Scale::Tiny) {
        let a = h.prepare(w.as_ref());
        let slc =
            SlcCompressor::new(a.e2mc.clone(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
        for (_, block) in a.exact_memory.all_blocks().step_by(11) {
            let enc = slc.compress(&block);
            if let StoredKind::Lossy { .. } = enc.kind() {
                assert!(
                    enc.size_bits() <= enc.decision().bit_budget,
                    "{}: lossy block {} bits over budget {}",
                    w.name(),
                    enc.size_bits(),
                    enc.decision().bit_budget
                );
            }
        }
    }
}

#[test]
fn predictors_order_by_quality_on_smooth_data() {
    // zero-fill <= first-symbol <= lane-matched on value-similar data.
    let h = harness();
    let w = all_workloads(Scale::Tiny).remove(6); // NN: random-walk tracks
    let a = h.prepare(w.as_ref());
    let mk = |p: PredictorKind| {
        SlcCompressor::new(
            a.e2mc.clone(),
            SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcPred).with_predictor(p),
        )
    };
    let zero = mk(PredictorKind::Zero);
    let lane = mk(PredictorKind::LaneMatched);
    let mut err_zero = 0.0f64;
    let mut err_lane = 0.0f64;
    let mut lossy = 0;
    for (region, block) in a.exact_memory.all_blocks() {
        if !region.safe_to_approx {
            continue;
        }
        let enc = zero.compress(&block);
        if !enc.is_lossy() {
            continue;
        }
        lossy += 1;
        let sq = |out: &[u8; 128]| -> f64 {
            block
                .chunks_exact(4)
                .zip(out.chunks_exact(4))
                .map(|(a, b)| {
                    let x = f32::from_le_bytes(a.try_into().unwrap());
                    let y = f32::from_le_bytes(b.try_into().unwrap());
                    if y.is_finite() {
                        (f64::from(x) - f64::from(y)).powi(2)
                    } else {
                        1e12
                    }
                })
                .sum()
        };
        err_zero += sq(&zero.decompress(&enc));
        let enc_lane = lane.compress(&block);
        err_lane += sq(&lane.decompress(&enc_lane));
    }
    assert!(lossy > 10, "need lossy blocks to compare, got {lossy}");
    assert!(err_lane < err_zero, "lane-matched {err_lane:.1} must beat zero-fill {err_zero:.1}");
}

#[test]
fn wider_mag_means_fewer_interior_budget_points() {
    // §V-C: the effective ratio falls as MAG grows because fewer sizes
    // admit any compression win.
    let h = harness();
    let w = all_workloads(Scale::Tiny).remove(4); // TP
    let a = h.prepare(w.as_ref());
    let mut gains = Vec::new();
    for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
        let slc = SlcCompressor::new(
            a.e2mc.clone(),
            SlcConfig::new(mag, mag.bytes() / 2, SlcVariant::TslcOpt),
        );
        let max = 128 / mag.bytes();
        let mut saved = 0u64;
        let mut total = 0u64;
        for (region, block) in a.exact_memory.all_blocks() {
            if !region.safe_to_approx {
                continue;
            }
            total += u64::from(max);
            saved += u64::from(max - slc.stored_bursts(&block));
        }
        gains.push(saved as f64 / total as f64);
    }
    // Some benefit must exist at every MAG for this compressible workload.
    assert!(gains.iter().all(|&g| g > 0.0), "gains {gains:?}");
}

//! Full-pipeline integration: harness → functional error → burst map →
//! timing simulation → energy, for a representative benchmark subset.

use slc::slc_core::slc::SlcVariant;
use slc::slc_power::EnergyModel;
use slc::slc_workloads::harness::{normalized_bandwidth, speedup};
use slc::slc_workloads::{workload_by_name, Harness, Scale, Scheme};

#[test]
fn nn_full_pipeline_shows_the_paper_shape() {
    let h = Harness::new(Scale::Tiny);
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());

    let (f_none, t_none) = h.evaluate(w.as_ref(), &a, &Scheme::Uncompressed);
    let e2mc = Scheme::E2mc(a.e2mc.clone());
    let (f_e2mc, t_e2mc) = h.evaluate(w.as_ref(), &a, &e2mc);
    let slc = Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
    let (f_slc, t_slc) = h.evaluate(w.as_ref(), &a, &slc);

    // Losslessness of the baselines.
    assert_eq!(f_none.error_pct, 0.0);
    assert_eq!(f_e2mc.error_pct, 0.0);
    // E2MC cuts traffic vs no compression; SLC cuts it further.
    assert!(t_e2mc.stats.total_bursts() < t_none.stats.total_bursts());
    assert!(t_slc.stats.total_bursts() <= t_e2mc.stats.total_bursts());
    assert!(normalized_bandwidth(&t_e2mc.stats, &t_slc.stats) <= 1.0);
    // SLC trades a small error for speed.
    assert!(f_slc.error_pct < 25.0, "error {}%", f_slc.error_pct);
    assert!(speedup(&t_e2mc.stats, &t_slc.stats) >= 0.99);
    // Energy follows cycles and bursts.
    let em = EnergyModel::default();
    let e_base = em.evaluate(&t_e2mc.stats, &h.config);
    let e_slc = em.evaluate(&t_slc.stats, &h.config);
    if t_slc.stats.cycles < t_e2mc.stats.cycles {
        assert!(e_slc.total_mj() < e_base.total_mj());
        assert!(e_slc.edp() < e_base.edp());
    }
}

#[test]
fn variants_share_traffic_but_differ_in_quality() {
    let h = Harness::new(Scale::Tiny);
    let w = workload_by_name("SRAD2", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let mut errors = Vec::new();
    for variant in [SlcVariant::TslcSimp, SlcVariant::TslcPred, SlcVariant::TslcOpt] {
        let scheme = Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, variant);
        let f = h.run_functional(w.as_ref(), &a, &scheme);
        errors.push((variant.label(), f.error_pct));
    }
    // "TSLC-SIMP has the highest error due to truncation. The error
    // reduces significantly for TSLC-PRED" (§V-A).
    assert!(errors[0].1 >= errors[1].1, "SIMP {errors:?} should not beat PRED");
    assert!(errors[2].1 <= errors[0].1, "OPT should not exceed SIMP: {errors:?}");
}

#[test]
fn deterministic_end_to_end() {
    let h = Harness::new(Scale::Tiny);
    let w = workload_by_name("DCT", Scale::Tiny).expect("registered");
    let a1 = h.prepare(w.as_ref());
    let a2 = h.prepare(w.as_ref());
    assert_eq!(a1.exact_output, a2.exact_output);
    let s1 = Scheme::slc(a1.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
    let (f1, t1) = h.evaluate(w.as_ref(), &a1, &s1);
    let s2 = Scheme::slc(a2.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
    let (f2, t2) = h.evaluate(w.as_ref(), &a2, &s2);
    assert_eq!(f1.error_pct, f2.error_pct);
    assert_eq!(t1.stats, t2.stats);
}

#[test]
fn threshold_zero_reduces_to_lossless_e2mc_timing() {
    let h = Harness::new(Scale::Tiny);
    let w = workload_by_name("TP", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let slc0 = Scheme::slc(a.e2mc.clone(), h.config.mag(), 0, SlcVariant::TslcOpt);
    let f = h.run_functional(w.as_ref(), &a, &slc0);
    assert_eq!(f.error_pct, 0.0, "threshold 0 must be lossless");
}

//! Failure injection: corrupt streams must fail loudly (panic with a
//! diagnostic), never silently decode to wrong data structures, and edge
//! configurations must behave.

use slc::slc_compress::bitstream::{BitReader, BitWriter};
use slc::slc_compress::e2mc::{E2mc, E2mcConfig};
use slc::slc_compress::{BlockCompressor, Compressed, Mag, BLOCK_BYTES};
use slc::slc_core::header::SlcHeader;
use slc::slc_core::slc::{SlcCompressor, SlcConfig, SlcVariant};
use slc::slc_sim::mc::UniformBursts;
use slc::slc_sim::trace::{Op, Trace};
use slc::slc_sim::{Engine, GpuConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn trained() -> E2mc {
    let bytes: Vec<u8> = (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect();
    E2mc::train_on_bytes(&bytes, &E2mcConfig::default())
}

fn sample_block() -> [u8; BLOCK_BYTES] {
    let mut b = [0u8; BLOCK_BYTES];
    for (i, c) in b.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(((i * 3) % 257) as f32).to_le_bytes());
    }
    b
}

#[test]
fn truncated_e2mc_stream_panics_not_garbage() {
    let e = trained();
    let c = e.compress(&sample_block());
    assert!(c.is_compressed());
    // Chop the stream: decoding must hit a guarded bounds check.
    let truncated = Compressed::new(c.size_bits() / 2, c.payload().to_vec());
    let result = catch_unwind(AssertUnwindSafe(|| e.decompress(&truncated)));
    assert!(result.is_err(), "truncated stream must not decode silently");
}

#[test]
fn bit_flipped_mode_bit_is_detected() {
    let e = trained();
    let c = e.compress(&sample_block());
    let mut bytes = c.payload().to_vec();
    bytes[0] ^= 0x80; // clear the compressed-mode bit
    let corrupt = Compressed::new(c.size_bits(), bytes);
    let result = catch_unwind(AssertUnwindSafe(|| e.decompress(&corrupt)));
    assert!(result.is_err(), "mode-bit corruption must be caught");
}

#[test]
fn bitreader_bounds_are_enforced() {
    let mut w = BitWriter::new();
    w.write(0xff, 8);
    let (bytes, len) = w.finish();
    let mut r = BitReader::new(&bytes, len);
    r.read(8);
    assert!(catch_unwind(AssertUnwindSafe(|| {
        let mut r2 = r.clone();
        r2.read(1)
    }))
    .is_err());
    assert!(catch_unwind(AssertUnwindSafe(|| {
        let mut r2 = BitReader::new(&bytes, len);
        r2.seek(9)
    }))
    .is_err());
}

#[test]
fn header_rejects_malformed_fields() {
    assert!(catch_unwind(|| {
        let h = SlcHeader::Lossy { ss: 63, len: 2, pdps: [0; 3] };
        let mut w = BitWriter::new();
        h.write(&mut w); // ss 63 is fine; the hole runs past the block at decode level
        w
    })
    .is_ok());
    assert!(catch_unwind(|| {
        let h = SlcHeader::Lossy { ss: 70, len: 1, pdps: [0; 3] };
        let mut w = BitWriter::new();
        h.write(&mut w)
    })
    .is_err());
}

#[test]
fn slc_roundtrip_survives_any_block_content() {
    // Pathological contents: all-ones, alternating, denormals, NaNs.
    let slc = SlcCompressor::new(trained(), SlcConfig::new(Mag::GDDR5, 16, SlcVariant::TslcOpt));
    let patterns: Vec<[u8; BLOCK_BYTES]> = vec![
        [0xff; BLOCK_BYTES],
        {
            let mut b = [0u8; BLOCK_BYTES];
            for (i, x) in b.iter_mut().enumerate() {
                *x = if i % 2 == 0 { 0xaa } else { 0x55 };
            }
            b
        },
        {
            let mut b = [0u8; BLOCK_BYTES];
            for c in b.chunks_exact_mut(4) {
                c.copy_from_slice(&f32::NAN.to_le_bytes());
            }
            b
        },
        {
            let mut b = [0u8; BLOCK_BYTES];
            for c in b.chunks_exact_mut(4) {
                c.copy_from_slice(&1e-40f32.to_le_bytes()); // denormal
            }
            b
        },
    ];
    for block in patterns {
        let enc = slc.compress(&block);
        let out = slc.decompress(&enc);
        if !enc.is_lossy() {
            assert_eq!(out, block);
        }
    }
}

#[test]
fn engine_handles_degenerate_traces() {
    let cfg = GpuConfig::default();
    // Single op.
    let mut t = Trace::new(cfg.sms);
    t.push(0, Op::Load(0));
    let stats = Engine::new(cfg.clone()).run(&t, &UniformBursts(4));
    assert_eq!(stats.loads, 1);
    // Sync with nothing outstanding.
    let mut t = Trace::new(cfg.sms);
    t.push(0, Op::Sync);
    let stats = Engine::new(cfg.clone()).run(&t, &UniformBursts(4));
    assert_eq!(stats.cycles, 0);
    // Stores only.
    let mut t = Trace::new(cfg.sms);
    for i in 0..100 {
        t.push(i % cfg.sms, Op::Store(i as u64));
    }
    let stats = Engine::new(cfg).run(&t, &UniformBursts(4));
    assert_eq!(stats.dram_writes, 100, "flush must drain all dirty lines");
}

#[test]
fn mag_extremes_are_consistent() {
    for mag_bytes in [8u32, 16, 32, 64, 128] {
        let mag = Mag::new(mag_bytes);
        assert_eq!(mag.round_up_bytes(1), mag_bytes);
        assert_eq!(mag.bursts_for_bytes(128, 128), 128 / mag_bytes);
    }
    assert!(catch_unwind(|| Mag::new(0)).is_err());
    assert!(catch_unwind(|| Mag::new(256)).is_err());
    assert!(catch_unwind(|| Mag::new(33)).is_err());
}

#[test]
fn zero_sized_inputs_are_rejected_or_empty() {
    // Metric on empty outputs must panic (caller bug), not return 0.
    assert!(catch_unwind(|| slc::slc_workloads::metrics::mre(&[], &[])).is_err());
    // An empty trace runs to zero cycles.
    let cfg = GpuConfig::default();
    let stats = Engine::new(cfg.clone()).run(&Trace::new(cfg.sms), &UniformBursts(4));
    assert_eq!(stats.cycles, 0);
}

//! Fault-injection integration: the graceful-degradation ladder across
//! the functional and timing stacks.
//!
//! Pins the PR's acceptance properties end to end:
//! * a present-but-zero-density fault map is byte-identical to no fault
//!   subsystem at all, for every scheme;
//! * a fixed seed reproduces the sweep exactly;
//! * uncorrectable/remap counts are monotone in density (the fault sets
//!   nest by construction, so demand can only grow);
//! * the ladder counters reconcile exactly with an independent per-block
//!   replay of the ladder decisions.

use slc::slc_core::slc::SlcVariant;
use slc::slc_sim::fault::FaultMap;
use slc::slc_sim::{FaultConfig, FaultPattern};
use slc::slc_workloads::{workload_by_name, Harness, Scale, Scheme};
use std::collections::HashSet;

fn harness() -> Harness {
    Harness::new(Scale::Tiny)
}

fn faulty(h: &Harness, fault: FaultConfig) -> Harness {
    h.clone().with_config(h.config.clone().with_faults(fault))
}

#[test]
fn zero_density_faults_are_byte_identical_to_no_faults() {
    let h = harness();
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let hf = faulty(&h, FaultConfig::new(FaultPattern::RandomRows, 0.0, 42));
    for scheme in [
        Scheme::Uncompressed,
        Scheme::E2mc(a.e2mc.clone()),
        Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt),
    ] {
        let (f0, t0) = h.evaluate(w.as_ref(), &a, &scheme);
        let (f1, t1) = hf.evaluate(w.as_ref(), &a, &scheme);
        let label = scheme.kind().label();
        assert_eq!(f0.error_pct, f1.error_pct, "{label}: functional error drifted");
        assert_eq!(f0.mre_pct, f1.mre_pct, "{label}: MRE drifted");
        assert_eq!(f0.psnr_db, f1.psnr_db, "{label}: PSNR drifted");
        assert_eq!(f0.max_abs_err, f1.max_abs_err, "{label}: max error drifted");
        assert_eq!(f0.bursts, f1.bursts, "{label}: burst map drifted");
        assert_eq!(t0.stats, t1.stats, "{label}: timing stats drifted");
        let plan = f1.fault.expect("faulty config must produce a plan");
        assert_eq!(plan.counters().remaps, 0);
        assert_eq!(plan.counters().uncorrectable_blocks, 0);
        assert_eq!(plan.counters().fault_escalations, 0);
        assert!(f0.fault.is_none(), "fault-free path must not build a plan");
    }
}

#[test]
fn fault_sweep_is_deterministic_under_a_fixed_seed() {
    let h = harness();
    let w = workload_by_name("BS", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let scheme = Scheme::slc(a.e2mc.clone(), h.config.mag(), 16, SlcVariant::TslcOpt);
    let fault = FaultConfig::new(FaultPattern::RandomRows, 0.2, 7);
    let hf = faulty(&h, fault);
    let (fa, ta) = hf.evaluate(w.as_ref(), &a, &scheme);
    let (fb, tb) = hf.evaluate(w.as_ref(), &a, &scheme);
    assert_eq!(fa.error_pct, fb.error_pct);
    assert_eq!(fa.psnr_db, fb.psnr_db);
    assert_eq!(fa.bursts, fb.bursts);
    assert_eq!(ta.stats, tb.stats);
    let (ca, cb) = (*fa.fault.expect("plan").counters(), *fb.fault.expect("plan").counters());
    assert_eq!(ca, cb);
    // Structural ladder invariants: the pool never frees slots, so the
    // occupancy peak is exactly the remap count and bounded by the pool.
    assert_eq!(ca.remaps, ca.spare_occupancy_peak);
    assert!(ca.spare_occupancy_peak <= u64::from(hf.config.fault.as_ref().unwrap().spare_blocks));
}

#[test]
fn demand_counters_are_monotone_in_density() {
    // Lossless staging is the identity, so every density sees the same
    // block contents and the nested fault sets make demand — and with it
    // remaps and uncorrectable counts — monotone, never by luck.
    let h = harness();
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let scheme = Scheme::E2mc(a.e2mc.clone());
    let mut last_remaps = 0u64;
    let mut last_uncorrectable = 0u64;
    for density in [0.0, 0.05, 0.2, 0.5, 1.0] {
        let fault = FaultConfig::new(FaultPattern::RandomRows, density, 9)
            .with_budget_bytes(8)
            .with_spare_blocks(16);
        let hf = faulty(&h, fault);
        let f = hf.run_functional(w.as_ref(), &a, &scheme);
        let c = *f.fault.expect("plan").counters();
        assert!(
            c.remaps >= last_remaps,
            "remaps fell from {last_remaps} to {} at density {density}",
            c.remaps
        );
        assert!(
            c.uncorrectable_blocks >= last_uncorrectable,
            "uncorrectable fell from {last_uncorrectable} to {} at density {density}",
            c.uncorrectable_blocks
        );
        last_remaps = c.remaps;
        last_uncorrectable = c.uncorrectable_blocks;
    }
    // The top of the sweep must have actually exercised both rungs.
    assert_eq!(last_remaps, 16, "a full-density sweep should exhaust the pool");
    assert!(last_uncorrectable > 0, "an exhausted pool must strand blocks");
}

#[test]
fn ladder_counters_reconcile_with_an_independent_replay() {
    // The lossless scheme never mutates memory, so the exact run's
    // cached per-boundary stored sizes are precisely what the ladder saw
    // — replay its decisions from first principles (fault map + stream
    // sizes + FCFS pool) and demand the counters match exactly.
    let h = harness();
    let w = workload_by_name("BS", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let scheme = Scheme::E2mc(a.e2mc.clone());
    let fault = FaultConfig::new(FaultPattern::RandomRows, 0.3, 11)
        .with_budget_bytes(8)
        .with_spare_blocks(4);
    let hf = faulty(&h, fault.clone());
    let f = hf.run_functional(w.as_ref(), &a, &scheme);
    let plan = f.fault.expect("plan");

    let map = FaultMap::build(&hf.config, &fault);
    let budget = fault.budget_bits();
    let mut remapped: HashSet<u64> = HashSet::new();
    let mut lost: HashSet<u64> = HashSet::new();
    for snapshot in a.exact_size_snapshots(w.as_ref()) {
        for b in snapshot.entries() {
            if !map.is_faulty(b.addr)
                || remapped.contains(&b.addr)
                || lost.contains(&b.addr)
                || b.e2mc_size_bits() <= budget
            {
                continue;
            }
            if (remapped.len() as u32) < fault.spare_blocks {
                remapped.insert(b.addr);
            } else {
                lost.insert(b.addr);
            }
        }
    }
    let c = plan.counters();
    assert_eq!(c.fault_escalations, 0, "lossless blocks never escalate");
    assert_eq!(c.remaps, remapped.len() as u64);
    assert_eq!(c.spare_occupancy_peak, remapped.len() as u64);
    assert_eq!(c.uncorrectable_blocks, lost.len() as u64);
    assert!(c.remaps > 0 && c.uncorrectable_blocks > 0, "config must exercise both rungs");
    for addr in &remapped {
        assert!(plan.slot_of(*addr).is_some(), "replayed remap {addr} missing from the plan");
    }
    for addr in &lost {
        assert!(plan.slot_of(*addr).is_none(), "stranded block {addr} holds a slot");
    }
}

#[test]
fn remapped_blocks_pay_their_indirection_in_the_timing_run() {
    let h = harness();
    let w = workload_by_name("NN", Scale::Tiny).expect("registered");
    let a = h.prepare(w.as_ref());
    let scheme = Scheme::E2mc(a.e2mc.clone());
    let (f0, t0) = h.evaluate(w.as_ref(), &a, &scheme);
    // A 2 B budget is below any header: every faulty block must remap
    // (the pool is oversized), and each of its DRAM fetches then carries
    // an extra pointer burst the healthy run never pays.
    let fault = FaultConfig::new(FaultPattern::RandomRows, 1.0, 3)
        .with_budget_bytes(2)
        .with_spare_blocks(1 << 20);
    let hf = faulty(&h, fault);
    let (f1, t1) = hf.evaluate(w.as_ref(), &a, &scheme);
    assert_eq!(f0.bursts, f1.bursts, "lossless staging records the same stored forms");
    let c = f1.fault.as_ref().expect("plan").counters();
    assert!(c.remaps > 0);
    assert_eq!(c.uncorrectable_blocks, 0, "the oversized pool must absorb everything");
    assert_eq!(t1.stats.remaps, c.remaps, "counters must surface in SimStats");
    assert!(
        t1.stats.read_bursts > t0.stats.read_bursts,
        "remapped fetches must pay pointer bursts: {} vs {}",
        t1.stats.read_bursts,
        t0.stats.read_bursts
    );
}

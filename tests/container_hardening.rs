//! Container hardening: a seeded corruption barrage against the framed
//! container format. Whatever the corruption — truncation at any byte
//! boundary, bit flips anywhere, directory entries lying about offsets,
//! sizes or modes — [`Engine::decompress`] must return an error or
//! decode to *some* full-size buffer. It must never panic unguarded,
//! read out of bounds, or allocate from a lying length field.

use slc::slc_compress::bdi::Bdi;
use slc::slc_compress::e2mc::{E2mc, E2mcConfig};
use slc::slc_compress::rans::Rans;
use slc::slc_engine::{
    frame_info, ContainerError, Engine, StorageMode, Threads, DIR_ENTRY_BYTES, HEADER_BYTES,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Deterministic corruption source (xorshift64*), so a failing flip is
/// reproducible from the test output alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Mixed stream: compressible f32 ramp with a noise stripe, so the
/// container carries both coded and raw chunks.
fn sample_stream() -> Vec<u8> {
    let mut out: Vec<u8> =
        (0..512u32).flat_map(|i| (((i * 3) % 257) as f32).to_le_bytes()).collect();
    let mut state = 0x0dd_ba11u64;
    for b in out[768..1536].iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
    out
}

fn bdi_engine() -> Engine {
    Engine::new(Arc::new(Bdi::new())).with_chunk_bytes(256)
}

/// One corrupted decode attempt: Ok must mean a full-size buffer, Err is
/// fine, an unguarded panic fails the test with the corruption context.
fn assert_contained(engine: &Engine, container: &[u8], expect_len: usize, what: &str) {
    for threads in [Threads::Serial, Threads::Exact(3)] {
        let result =
            catch_unwind(AssertUnwindSafe(|| engine.decompress_threads(container, threads)));
        match result {
            Err(_) => panic!("{what}: unguarded panic escaped the decode path"),
            Ok(Err(_)) => {}
            Ok(Ok(out)) => assert_eq!(
                out.len(),
                expect_len,
                "{what}: a successful decode must be a full-size buffer"
            ),
        }
    }
}

#[test]
fn truncation_at_every_header_and_directory_boundary() {
    let engine = bdi_engine();
    let data = sample_stream();
    let container = engine.compress(&data);
    let info = frame_info(&container).unwrap();
    let dir_end = HEADER_BYTES + info.chunk_count as usize * DIR_ENTRY_BYTES;
    // Every byte boundary of the header + directory: all structurally
    // fatal, so the parse must error (no partial metadata is usable).
    for cut in 0..dir_end {
        assert!(
            engine.decompress(&container[..cut]).is_err(),
            "cut at metadata byte {cut} must be an error"
        );
    }
    // Payload truncation, every boundary: the directory now points past
    // the end, which parse rejects up front.
    for cut in dir_end..container.len() {
        assert_contained(&engine, &container[..cut], data.len(), &format!("payload cut {cut}"));
        assert!(
            engine.decompress(&container[..cut]).is_err(),
            "payload cut {cut} leaves a dangling directory span"
        );
    }
    assert_eq!(engine.decompress(&container).unwrap(), data, "uncut container still decodes");
}

#[test]
fn seeded_bit_flip_barrage_is_contained() {
    let engine = bdi_engine();
    let data = sample_stream();
    let container = engine.compress(&data);
    let mut rng = Rng(0xc0de_f11b_5eed);
    let mut errors = 0u32;
    const FLIPS: usize = 512;
    for i in 0..FLIPS {
        let mut corrupt = container.clone();
        let bit = (rng.next() as usize) % (corrupt.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert_contained(&engine, &corrupt, data.len(), &format!("flip {i} (bit {bit})"));
        if engine.decompress(&corrupt).is_err() {
            errors += 1;
        }
    }
    // Sanity: some flips must trip validation (header/directory bits are
    // ~7% of this container). Most flips land in payload bytes, where a
    // changed-but-full-size decode is the correct contained outcome —
    // flipping a verbatim byte simply decodes to different data.
    assert!(errors > 0, "no flip was ever detected ({FLIPS} tried)");
    assert_eq!(engine.decompress(&container).unwrap(), data, "pristine container unaffected");
}

#[test]
fn double_flips_across_trained_codec_payloads_are_contained() {
    // E2MC's decode path (Huffman tables + escapes) sees the barrage
    // too: flips in coded payloads must surface as ChunkCorrupt, not as
    // an unwind out of a worker thread.
    let training: Vec<u8> =
        (0..1u32 << 14).flat_map(|i| ((i % 257) as f32).to_le_bytes()).collect();
    let engine = Engine::new(Arc::new(E2mc::train_on_bytes(&training, &E2mcConfig::default())))
        .with_chunk_bytes(256);
    let data = sample_stream();
    let container = engine.compress(&data);
    let info = frame_info(&container).unwrap();
    assert!(info.coded_chunks > 0, "need coded chunks to corrupt");
    let dir_end = HEADER_BYTES + info.chunk_count as usize * DIR_ENTRY_BYTES;
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..128 {
        let mut corrupt = container.clone();
        let payload_bits = (corrupt.len() - dir_end) * 8;
        for _ in 0..2 {
            let bit = dir_end * 8 + (rng.next() as usize) % payload_bits;
            corrupt[bit / 8] ^= 1 << (bit % 8);
        }
        assert_contained(&engine, &corrupt, data.len(), &format!("payload flip pair {i}"));
    }
}

#[test]
fn rans_chunk_streams_survive_the_barrage() {
    // The whole-chunk rANS path decodes through the chunk-coder dispatch
    // (table parse + interleaved stream walk), not the per-block tag
    // walk: flips and truncations in its payload must surface as
    // ChunkCorrupt or decode to a full-size buffer — never as an unwind
    // out of a worker or an out-of-bounds read.
    let engine = Engine::new(Arc::new(Rans::new())).with_chunk_bytes(256);
    let data = sample_stream();
    let container = engine.compress(&data);
    let info = frame_info(&container).unwrap();
    assert!(info.coded_chunks > 0, "need rANS-coded chunks to corrupt");
    let dir_end = HEADER_BYTES + info.chunk_count as usize * DIR_ENTRY_BYTES;

    // Payload truncation at every byte boundary.
    for cut in dir_end..container.len() {
        assert_contained(&engine, &container[..cut], data.len(), &format!("rans cut {cut}"));
    }

    // Seeded single flips across the whole container, plus double flips
    // confined to the payload (past the metadata validation).
    let mut rng = Rng(0xa125_0b5e_55ed);
    for i in 0..256 {
        let mut corrupt = container.clone();
        let bit = (rng.next() as usize) % (corrupt.len() * 8);
        corrupt[bit / 8] ^= 1 << (bit % 8);
        assert_contained(&engine, &corrupt, data.len(), &format!("rans flip {i} (bit {bit})"));
    }
    for i in 0..128 {
        let mut corrupt = container.clone();
        let payload_bits = (corrupt.len() - dir_end) * 8;
        for _ in 0..2 {
            let bit = dir_end * 8 + (rng.next() as usize) % payload_bits;
            corrupt[bit / 8] ^= 1 << (bit % 8);
        }
        assert_contained(&engine, &corrupt, data.len(), &format!("rans payload pair {i}"));
    }
    assert_eq!(engine.decompress(&container).unwrap(), data, "pristine rANS container decodes");
}

#[test]
fn lying_directory_entries_are_rejected_or_contained() {
    let engine = bdi_engine();
    let data = sample_stream();
    let container = engine.compress(&data);
    let info = frame_info(&container).unwrap();
    assert!(info.chunk_count >= 2);
    let entry_at = |chunk: usize| HEADER_BYTES + chunk * DIR_ENTRY_BYTES;

    // Offset pointing far past the payload.
    let mut lying = container.clone();
    lying[entry_at(0)..entry_at(0) + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        engine.decompress(&lying),
        Err(ContainerError::InvalidEntry { chunk: 0, .. })
    ));

    // encoded_bits puffed up beyond the payload section.
    let mut lying = container.clone();
    lying[entry_at(0) + 8..entry_at(0) + 12].copy_from_slice(&(!7u32).to_le_bytes());
    assert!(matches!(
        engine.decompress(&lying),
        Err(ContainerError::InvalidEntry { chunk: 0, .. })
    ));

    // encoded_bits not byte-aligned.
    let mut lying = container.clone();
    lying[entry_at(0) + 8..entry_at(0) + 12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        engine.decompress(&lying),
        Err(ContainerError::InvalidEntry { chunk: 0, .. })
    ));

    // Unknown storage mode byte.
    let mut lying = container.clone();
    lying[entry_at(1) + 12] = 0x7e;
    assert!(matches!(
        engine.decompress(&lying),
        Err(ContainerError::InvalidEntry { chunk: 1, .. })
    ));

    // A coded entry relabelled Raw with the wrong length for its chunk.
    let coded_chunk = (0..info.chunk_count as usize)
        .find(|&c| {
            let mode = container[entry_at(c) + 12];
            mode == StorageMode::Coded.as_u8()
        })
        .expect("a coded chunk exists");
    let mut lying = container.clone();
    lying[entry_at(coded_chunk) + 12] = StorageMode::Raw.as_u8();
    assert_contained(&engine, &lying, data.len(), "coded chunk relabelled raw");

    // Lying chunk_count (header) — inconsistent with total_len.
    let mut lying = container.clone();
    lying[12..16].copy_from_slice(&(info.chunk_count + 1).to_le_bytes());
    assert!(matches!(engine.decompress(&lying), Err(ContainerError::BadChunkCount { .. })));

    // Two entries aliasing the same span: structurally valid (both in
    // bounds) — must decode to a full-size buffer or error, never OOB.
    let mut aliased = container.clone();
    let (a, b) = (entry_at(0), entry_at(1));
    let first: Vec<u8> = aliased[a..a + DIR_ENTRY_BYTES].to_vec();
    aliased[b..b + DIR_ENTRY_BYTES].copy_from_slice(&first);
    assert_contained(&engine, &aliased, data.len(), "aliased directory entries");
}

#[test]
fn header_field_tampering_is_rejected() {
    let engine = bdi_engine();
    let data = sample_stream();
    let container = engine.compress(&data);

    let mut bad = container.clone();
    bad[0..4].copy_from_slice(b"SLX1");
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::BadMagic(_))));

    let mut bad = container.clone();
    bad[4] = 99;
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::BadVersion(_))));

    let mut bad = container.clone();
    bad[6] = 200;
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::UnknownCodec(200))));

    let mut bad = container.clone();
    bad[7] = 1;
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::BadFlags(1))));

    // Wrong-but-known codec byte: the engine must refuse to decode a
    // container labelled for a different codec.
    let mut bad = container.clone();
    bad[6] = slc::slc_compress::CodecId::Fpc.as_u8();
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::CodecMismatch { .. })));

    // total_len tampering desynchronises the chunk-count invariant.
    let mut bad = container.clone();
    bad[16..24].copy_from_slice(&(data.len() as u64 * 1000).to_le_bytes());
    assert!(matches!(engine.decompress(&bad), Err(ContainerError::BadChunkCount { .. })));
}

//! Equivalence proof for the word-at-a-time bitstream and the table-driven
//! Huffman decoder.
//!
//! The seed implementation packed bits with a per-byte loop and decoded
//! E2MC codewords by walking canonical-code ranges bit by bit. This PR
//! replaced both with word-based fast paths; these tests pin the wire
//! format:
//!
//! * `reference` reimplements the seed's bit-by-bit packing semantics; the
//!   property tests assert the production writer emits **bit-identical
//!   streams** for arbitrary `(value, width)` sequences, which covers every
//!   codec (codecs serialise exclusively through `BitWriter`).
//! * A reference tree-walk decoder (linear scan over `(code, length)`
//!   pairs) must agree with the production LUT decoder on every symbol.
//! * Golden vectors freeze known byte encodings and per-codec stream
//!   hashes for deterministic blocks, so future refactors cannot silently
//!   change the format.

use proptest::prelude::*;
use slc::slc_compress::bdi::Bdi;
use slc::slc_compress::bitstream::{BitReader, BitWriter};
use slc::slc_compress::bpc::Bpc;
use slc::slc_compress::cpack::Cpack;
use slc::slc_compress::e2mc::{E2mc, E2mcConfig, MAX_CODE_LEN};
use slc::slc_compress::fpc::Fpc;
use slc::slc_compress::{Block, BlockCompressor, BLOCK_BYTES};

/// The seed's bit-by-bit packing model (MSB-first within each byte).
mod reference {
    pub struct RefWriter {
        pub bytes: Vec<u8>,
        pub len_bits: u32,
    }

    impl RefWriter {
        pub fn new() -> Self {
            Self { bytes: Vec::new(), len_bits: 0 }
        }

        pub fn write(&mut self, value: u64, width: u32) {
            for i in (0..width).rev() {
                let bit = ((value >> i) & 1) as u8;
                let bit_in_byte = (self.len_bits % 8) as u8;
                if bit_in_byte == 0 {
                    self.bytes.push(0);
                }
                let last = self.bytes.last_mut().expect("pushed above");
                *last |= bit << (7 - bit_in_byte);
                self.len_bits += 1;
            }
        }
    }
}

/// FNV-1a over a compressed stream, for compact golden vectors.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mask(v: u64, w: u32) -> u64 {
    if w == 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

#[test]
fn golden_byte_vectors() {
    // write(0b101, 3) ++ write(0xABCD, 16): 101 1010101111001101 ->
    // 10110101 01111001 101xxxxx.
    let mut w = BitWriter::new();
    w.write(0b101, 3);
    w.write(0xABCD, 16);
    let (bytes, len) = w.finish();
    assert_eq!(len, 19);
    assert_eq!(bytes, vec![0xB5, 0x79, 0xA0]);

    // A 64-bit field crossing the staging-word split path.
    let mut w = BitWriter::new();
    w.write(1, 1);
    w.write(0x0123_4567_89AB_CDEF, 64);
    let (bytes, len) = w.finish();
    assert_eq!(len, 65);
    assert_eq!(bytes, vec![0x80, 0x91, 0xA2, 0xB3, 0xC4, 0xD5, 0xE6, 0xF7, 0x80]);
}

/// Deterministic pseudo-random block generator (SplitMix64).
fn test_block(seed: u64) -> Block {
    let mut b = [0u8; BLOCK_BYTES];
    let mut x = seed;
    for chunk in b.chunks_exact_mut(8) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
    }
    b
}

fn ramp_block(start: u32, step: u32) -> Block {
    let mut b = [0u8; BLOCK_BYTES];
    for (i, c) in b.chunks_exact_mut(4).enumerate() {
        c.copy_from_slice(&(start.wrapping_add(step * i as u32)).to_le_bytes());
    }
    b
}

/// Golden stream hashes for deterministic blocks, recorded from the
/// as-merged implementation (which the property tests above prove
/// bit-identical to the seed's packing). Any change to these values is a
/// wire-format break.
#[test]
fn golden_codec_stream_hashes() {
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let cpack = Cpack::new();
    let bpc = Bpc::new();
    let ramp = ramp_block(0x4000_0000, 3);
    let zeros = [0u8; BLOCK_BYTES];
    let expectations: [(&str, &dyn BlockCompressor, &Block, u32, u64); 4] = [
        ("bdi/ramp", &bdi, &ramp, 324, 0xd780_6542_3373_97d5),
        ("fpc/zeros", &fpc, &zeros, 24, 0x85e3_6318_cda0_4b7b),
        ("cpack/zeros", &cpack, &zeros, 64, 0xa8c7_f832_281a_39c5),
        ("bpc/ramp", &bpc, &ramp, 47, 0x90be_3613_64aa_1e3d),
    ];
    for (name, codec, block, bits, hash) in expectations {
        let c = codec.compress(block);
        if std::env::var("GOLDEN_PRINT").is_ok() {
            eprintln!("GOLDEN {name} bits={} fnv={:#018x}", c.size_bits(), fnv(c.payload()));
            continue;
        }
        assert_eq!(c.size_bits(), bits, "{name}: stream length changed");
        assert_eq!(fnv(c.payload()), hash, "{name}: stream bytes changed");
        assert_eq!(&codec.decompress(&c), block, "{name}: roundtrip broken");
    }
}

#[test]
fn reference_huffman_walk_agrees_with_lut() {
    let training: Vec<u8> = (0..1u32 << 14).flat_map(|i| ((i % 301) * 11).to_le_bytes()).collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
    let table = e2mc.table();
    let code = table.canonical_code();
    // Reference decode: linear scan over every entry's (code, length).
    let reference_decode = |window: u32| -> (u32, u32) {
        for entry in 0..code.alphabet_len() {
            let len = code.length(entry);
            if len == 0 {
                continue;
            }
            if window >> (MAX_CODE_LEN - len) == code.code(entry) as u32 {
                return (entry as u32, len);
            }
        }
        panic!("no codeword matches window {window:#06x}");
    };
    for window in 0..1u32 << MAX_CODE_LEN {
        let expect = reference_decode(window);
        let got = code.decode(window);
        assert_eq!(got, expect, "window {window:#06x}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_writer_matches_seed_reference(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..96)) {
        let mut reference = reference::RefWriter::new();
        let mut writer = BitWriter::new();
        for &(v, w) in &fields {
            let m = mask(v, w);
            reference.write(m, w);
            writer.write(m, w);
        }
        let (bytes, len) = writer.finish();
        prop_assert_eq!(len, reference.len_bits);
        prop_assert_eq!(bytes, reference.bytes);
    }

    #[test]
    fn prop_reader_matches_reference_bits(data in proptest::collection::vec(any::<u8>(), 1..64),
                                          widths in proptest::collection::vec(1u32..=64, 1..32)) {
        let len = (data.len() * 8) as u32;
        let mut r = BitReader::new(&data, len);
        let mut pos = 0u32;
        for &w in &widths {
            if len - pos < w {
                break;
            }
            // Reference extraction straight from the byte array.
            let mut expect = 0u64;
            for i in 0..w {
                let p = pos + i;
                let bit = (data[(p / 8) as usize] >> (7 - p % 8)) & 1;
                expect = (expect << 1) | bit as u64;
            }
            prop_assert_eq!(r.read(w), expect);
            pos += w;
        }
    }

    #[test]
    fn prop_all_codecs_roundtrip_and_stay_stable(seed in any::<u64>()) {
        let block = test_block(seed);
        let bdi = Bdi::new();
        let fpc = Fpc::new();
        let cpack = Cpack::new();
        let bpc = Bpc::new();
        let codecs: [&dyn BlockCompressor; 4] = [&bdi, &fpc, &cpack, &bpc];
        for codec in codecs {
            let c = codec.compress(&block);
            // Stream is a pure function of the block.
            let again = codec.compress(&block);
            prop_assert_eq!(c.size_bits(), again.size_bits());
            prop_assert_eq!(c.payload(), again.payload());
            prop_assert_eq!(codec.decompress(&c), block);
        }
    }

    #[test]
    fn prop_e2mc_stream_is_sum_of_code_lengths(words in proptest::collection::vec(0u32..600, BLOCK_BYTES / 4)) {
        // The paper's core invariant: compressed size == header + sum of
        // per-symbol code lengths — decode tables and encode tables must
        // agree on every length.
        let training: Vec<u8> = (0..1u32 << 14).flat_map(|i| (i % 600).to_le_bytes()).collect();
        let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
        let mut block = [0u8; BLOCK_BYTES];
        for (i, w) in words.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let c = e2mc.compress(&block);
        if c.is_compressed() {
            prop_assert_eq!(c.size_bits(), e2mc.lossless_size_bits(&block));
        }
        prop_assert_eq!(e2mc.decompress(&c), block);
    }
}

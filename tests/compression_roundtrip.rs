//! Cross-crate integration: every lossless codec round-trips every kind
//! of data the workloads generate, and their sizes respect the MAG
//! arithmetic used by the figures.

use slc::slc_compress::bdi::Bdi;
use slc::slc_compress::bpc::Bpc;
use slc::slc_compress::cpack::Cpack;
use slc::slc_compress::e2mc::{E2mc, E2mcConfig};
use slc::slc_compress::fpc::Fpc;
use slc::slc_compress::ratio::RatioAccumulator;
use slc::slc_compress::{Block, BlockCompressor, Mag, BLOCK_BITS, BLOCK_BYTES};
use slc::slc_workloads::{all_workloads, Scale};

fn workload_blocks() -> Vec<Block> {
    let mut blocks = Vec::new();
    for w in all_workloads(Scale::Tiny) {
        let mem = w.build(7);
        // A slice of each benchmark's initial memory.
        blocks.extend(mem.all_blocks().map(|(_, b)| b).step_by(17).take(64));
    }
    blocks
}

#[test]
fn every_codec_roundtrips_every_workload_block() {
    let blocks = workload_blocks();
    assert!(blocks.len() > 300, "expected a broad sample, got {}", blocks.len());
    let training: Vec<u8> = blocks.iter().flat_map(|b| b.iter().copied()).collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
    let bdi = Bdi::new();
    let fpc = Fpc::new();
    let cpack = Cpack::new();
    let bpc = Bpc::new();
    let codecs: [&dyn BlockCompressor; 5] = [&bdi, &fpc, &cpack, &bpc, &e2mc];
    for (i, block) in blocks.iter().enumerate() {
        for codec in codecs {
            let c = codec.compress(block);
            assert_eq!(
                codec.decompress(&c),
                *block,
                "{} failed roundtrip on workload block {i}",
                codec.name()
            );
            assert!(c.size_bits() <= BLOCK_BITS);
            assert_eq!(codec.size_bits(block), c.size_bits(), "{} size model drift", codec.name());
        }
    }
}

#[test]
fn effective_ratio_is_consistent_across_codecs() {
    let blocks = workload_blocks();
    let training: Vec<u8> = blocks.iter().flat_map(|b| b.iter().copied()).collect();
    let e2mc = E2mc::train_on_bytes(&training, &E2mcConfig::default());
    for mag in [Mag::NARROW_16, Mag::GDDR5, Mag::WIDE_64] {
        let mut acc = RatioAccumulator::new(mag, BLOCK_BYTES as u32);
        for b in &blocks {
            acc.record_bits(e2mc.size_bits(b));
        }
        assert!(acc.effective_ratio() <= acc.raw_ratio() + 1e-12);
        assert!(acc.effective_ratio() >= 1.0);
    }
}

#[test]
fn trained_tables_beat_untrained_on_their_own_data() {
    // The whole point of E2MC's sampling: per-application tables.
    let w = all_workloads(Scale::Tiny).remove(4); // TP: smooth matrix
    let mem = w.build(3);
    let own: Vec<u8> = mem.all_blocks().flat_map(|(_, b)| b.to_vec()).collect();
    let foreign: Vec<u8> =
        (0..1u32 << 14).flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes()).collect();
    let own_table = E2mc::train_on_bytes(&own, &E2mcConfig::default());
    let foreign_table = E2mc::train_on_bytes(&foreign, &E2mcConfig::default());
    let mut own_total = 0u64;
    let mut foreign_total = 0u64;
    for (_, b) in mem.all_blocks() {
        own_total += u64::from(own_table.size_bits(&b));
        foreign_total += u64::from(foreign_table.size_bits(&b));
    }
    assert!(
        own_total < foreign_total,
        "own-table {own_total} should beat foreign-table {foreign_total}"
    );
}
